package autoncs

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
)

// EditSet is a typed structural diff between two networks of the same
// neuron count — the input to a delta recompile.
type EditSet = graph.EditSet

// DeltaStats summarizes how much of the previous compile a delta recompile
// reused, per stage.
type DeltaStats = obs.DeltaStats

// DiffNetworks returns the typed edit set turning base into edited. Both
// networks must have the same neuron count.
func DiffNetworks(base, edited *Network) (*EditSet, error) {
	return graph.DiffConn(base, edited)
}

// BaseNetwork reconstructs the network an assignment exactly covers: the
// union of every crossbar connection and every discrete synapse. A delta
// recompile diffs the edited network against this reconstruction, so a
// caller holding only the assignment (e.g. a restored artifact) can size
// an edit without the original network.
func BaseNetwork(a *Assignment) *Network {
	base := graph.NewConn(a.N)
	for _, cb := range a.Crossbars {
		for _, e := range cb.Conns {
			base.Set(e.From, e.To)
		}
	}
	for _, e := range a.Synapses {
		base.Set(e.From, e.To)
	}
	return base
}

// CompileDelta recompiles an edited network by reusing the untouched
// regions of a previous compile of a nearby network. It is CompileDeltaCtx
// under context.Background().
func CompileDelta(prev *Result, net *Network, cfg Config) (*Result, DeltaStats, error) {
	return CompileDeltaCtx(context.Background(), prev, net, cfg)
}

// CompileDeltaCtx is the incremental counterpart of CompileCtx: given the
// Result of a previous compile and an edited network, it recompiles only
// the impact region of the edit and splices the previous answer back in
// everywhere else.
//
// The impact region is derived structurally. The previous network is
// reconstructed from prev.Assignment (which exactly covers it) and diffed
// against net, and the edit set is applied to the assignment itself: a
// removed connection shrinks the crossbar (or drops the synapse) that
// realized it, and an added connection is absorbed into a surviving
// crossbar whose block covers it. Only crossbars the edits emptied or
// dragged below half the clustering threshold dissolve; their surviving
// connections plus the unabsorbable additions form the residual, which is
// re-clustered through ISC (or emitted as synapses when too small to be
// worth a crossbar). The merged assignment then flows through warm-started
// physical design: every surviving cell keeps its exact coordinates (new
// cells are legalized into the gaps), and routed paths whose endpoints
// didn't move are committed as-is, with only the dirty wires negotiated
// from scratch.
//
// Requirements: prev must carry an assignment, cfg.Device must equal
// prev.Device (like Redesign), and net must have prev.Assignment.N neurons.
// A structurally distant edit degrades gracefully — dissolving more and
// reusing less — but the result of a delta is NOT bit-identical to a full
// compile of net: it tracks the quality of the base it was edited from
// (see docs/incremental.md). The zero-edit delta reproduces prev exactly.
// Like CompileCtx, a delta is deterministic: the same (prev, net, cfg)
// yields a bit-identical Result for every worker count.
func CompileDeltaCtx(ctx context.Context, prev *Result, net *Network, cfg Config) (*Result, DeltaStats, error) {
	var stats DeltaStats
	if err := validateInput(net, cfg); err != nil {
		return nil, stats, err
	}
	if prev == nil || prev.Assignment == nil {
		return nil, stats, fmt.Errorf("autoncs: delta compile requires a previous result carrying an assignment")
	}
	if cfg.Device != prev.Device {
		return nil, stats, fmt.Errorf("autoncs: delta compile device model differs from the %v the previous result was built with", prev.Device)
	}
	if prev.Assignment.N != net.N() {
		return nil, stats, fmt.Errorf("autoncs: delta compile: previous result has %d neurons, edited network %d (resizing edits need a full compile)",
			prev.Assignment.N, net.N())
	}

	ob := cfg.Observer
	start := time.Now()
	obs.Emit(ob, obs.CompileStart{Neurons: net.N(), Connections: net.NNZ(), Workers: cfg.Workers})
	res := &Result{Device: cfg.Device, StageTimes: make(map[Stage]time.Duration)}

	var d *deltaPlan
	err := res.runStage(ob, StageClustering, func() error {
		var err error
		d, err = planDelta(ctx, prev, net, cfg, &stats)
		if err != nil {
			return err
		}
		res.Assignment, res.Trace = d.merged, d.trace
		return nil
	})
	if err == nil && !cfg.SkipPhysical {
		if prev.Placement == nil || prev.Routing == nil {
			// The base compile skipped physical design: nothing to warm-start
			// from, so the physical stages run from scratch.
			stats.FullRoute = true
			err = res.physicalDesign(ctx, cfg)
			if err == nil {
				stats.Cells = len(res.Netlist.Cells)
				stats.Wires = len(res.Netlist.Wires)
				stats.ReroutedWires = len(res.Netlist.Wires)
			}
		} else {
			err = res.physicalDelta(ctx, prev, cfg, d, &stats)
		}
	}
	if err == nil {
		obs.Emit(ob, stats)
	}
	obs.Emit(ob, obs.CompileEnd{Elapsed: time.Since(start), Err: err})
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

// deltaPlan carries the clustering-stage delta decisions forward into the
// physical stages: which merged crossbars are previous crossbars, and which.
type deltaPlan struct {
	merged   *Assignment
	trace    []Iteration
	keptPrev []int // keptPrev[i] = prev crossbar index of merged crossbar i, for i < len(keptPrev)
}

// planDelta reconstructs the base network from prev's assignment, diffs it
// against net, dissolves the crossbars inside the impact region, re-runs
// ISC on the residual connections only, and merges the kept and new pieces
// into an assignment of net.
func planDelta(ctx context.Context, prev *Result, net *Network, cfg Config, stats *DeltaStats) (*deltaPlan, error) {
	n := net.N()
	pa := prev.Assignment

	base := BaseNetwork(pa)

	es, err := graph.DiffConn(base, net)
	if err != nil {
		return nil, fmt.Errorf("autoncs: delta diff: %w", err)
	}
	stats.Edits = es.Edits()
	stats.AddedEdges = len(es.Added)
	stats.RemovedEdges = len(es.Removed)
	stats.EditRatio = es.Ratio(base.NNZ())
	stats.TouchedNeurons = len(es.TouchedNeurons())

	// Edit the previous assignment in place rather than dissolving every
	// crossbar near the edit. A removed connection shrinks the crossbar
	// (or drops the synapse) that realized it; an added connection is
	// absorbed into the first surviving crossbar whose Inputs×Outputs
	// block covers it — any in-block connection is realizable by
	// construction. Only a crossbar the edits emptied or dragged below
	// half the clustering threshold dissolves into the residual for
	// re-clustering; everything else survives verbatim, which is what
	// makes the impact region of a small edit small. (Re-clustering the
	// whole neighborhood instead loses badly: ISC re-finds the dissolved
	// clusters far worse from the scattered residual than it originally
	// did from the full network.)
	removedFrom := make(map[int]map[Edge]bool) // prev crossbar index -> its removed conns
	removedSyn := make(map[Edge]bool)
	prevSyn := make(map[Edge]bool, len(pa.Synapses))
	for _, e := range pa.Synapses {
		prevSyn[e] = true
	}
	edgeXbar := make(map[Edge]int)
	for xi, cb := range pa.Crossbars {
		for _, e := range cb.Conns {
			edgeXbar[e] = xi
		}
	}
	for _, e := range es.Removed {
		if xi, ok := edgeXbar[e]; ok {
			if removedFrom[xi] == nil {
				removedFrom[xi] = make(map[Edge]bool)
			}
			removedFrom[xi][e] = true
		} else if prevSyn[e] {
			removedSyn[e] = true
		} else {
			return nil, fmt.Errorf("autoncs: delta: removed edge %v not realized by the previous assignment", e)
		}
	}

	// The dissolution cutoff: half the utilization threshold the edited
	// network's own clustering would run under.
	unhealthy := resolveThreshold(net, cfg) / 2
	var kept []Crossbar // value copies; Conns cloned before any mutation
	var keptPrev []int
	var residual []Edge
	for xi, cb := range pa.Crossbars {
		rem := removedFrom[xi]
		if len(rem) == 0 {
			kept = append(kept, cb)
			keptPrev = append(keptPrev, xi)
			continue
		}
		conns := make([]Edge, 0, len(cb.Conns)-len(rem))
		for _, e := range cb.Conns {
			if !rem[e] {
				conns = append(conns, e)
			}
		}
		cb.Conns = conns
		if cb.Used() == 0 || cb.Utilization() < unhealthy {
			residual = append(residual, conns...)
			continue
		}
		kept = append(kept, cb)
		keptPrev = append(keptPrev, xi)
	}

	// Absorb added edges into surviving crossbars where possible. The scan
	// is by kept order, lowest first — deterministic. Appending to a
	// survivor's Conns must not scribble over the previous assignment's
	// backing array, so a crossbar's Conns are cloned on first absorption.
	inKept := make(map[int][]int)  // neuron -> kept indices with it as an input
	outKept := make(map[int][]int) // neuron -> kept indices with it as an output
	for ki := range kept {
		for _, nn := range kept[ki].Inputs {
			inKept[nn] = append(inKept[nn], ki)
		}
		for _, nn := range kept[ki].Outputs {
			outKept[nn] = append(outKept[nn], ki)
		}
	}
	absorbed := make(map[int]bool)
	for _, e := range es.Added {
		target := -1
		outs := outKept[e.To]
		for _, ki := range inKept[e.From] {
			for _, ko := range outs {
				if ki == ko {
					target = ki
					break
				}
			}
			if target >= 0 {
				break
			}
		}
		if target < 0 {
			residual = append(residual, e)
			continue
		}
		cb := &kept[target]
		if !absorbed[target] {
			cb.Conns = append(append([]Edge(nil), cb.Conns...), e)
			absorbed[target] = true
		} else {
			cb.Conns = append(cb.Conns, e)
		}
	}

	var carried []Edge
	for _, e := range pa.Synapses {
		if !removedSyn[e] {
			carried = append(carried, e)
		}
	}
	stats.BaseCrossbars = len(pa.Crossbars)
	stats.KeptCrossbars = len(kept)
	stats.DirtyCrossbars = len(pa.Crossbars) - len(kept)
	stats.ResidualConns = len(residual)
	if len(pa.Crossbars) > 0 {
		stats.ClusterReuseFrac = float64(len(kept)) / float64(len(pa.Crossbars))
	}

	merged := &Assignment{N: n, Total: net.NNZ()}
	merged.Crossbars = append(merged.Crossbars, kept...)
	var trace []Iteration
	if len(residual) >= cfg.Library.Min() {
		// Enough residual connections to be worth crossbars of their own.
		// Re-cluster them on their induced active subgraph, not the full
		// neuron space: most neurons have no residual connection, and the
		// isolated rows would both pollute the spectral clustering and
		// drag the auto utilization threshold to the full net's level.
		// Ids translate back through the active list afterwards.
		rc := graph.NewConn(n)
		for _, e := range residual {
			rc.Set(e.From, e.To)
		}
		active := rc.ActiveNeurons()
		sub := rc.Sub(active)
		iscRes, err := core.ISCCtx(ctx, sub, core.ISCOptions{
			Library:              cfg.Library,
			UtilizationThreshold: resolveThreshold(sub, cfg),
			SelectionQuantile:    cfg.SelectionQuantile,
			Rand:                 rand.New(rand.NewSource(cfg.Seed)),
			Workers:              cfg.Workers,
			Observer:             cfg.Observer,
			Multilevel:           cfg.Multilevel,
			MultilevelCutoff:     cfg.MultilevelCutoff,
			CoarsenRatio:         cfg.CoarsenRatio,
			MultilevelLevels:     cfg.MultilevelLevels,
		})
		if err != nil {
			return nil, fmt.Errorf("autoncs: delta clustering: %w", err)
		}
		for _, cb := range iscRes.Assignment.Crossbars {
			merged.Crossbars = append(merged.Crossbars, translateCrossbar(cb, active))
		}
		for _, e := range iscRes.Assignment.Synapses {
			merged.Synapses = append(merged.Synapses, Edge{From: active[e.From], To: active[e.To]})
		}
		trace = iscRes.Trace
	} else {
		// Too few residual connections for a crossbar: discrete synapses.
		merged.Synapses = append(merged.Synapses, residual...)
	}
	stats.NewCrossbars = len(merged.Crossbars) - len(keptPrev)
	merged.Synapses = append(merged.Synapses, carried...)
	// Row-major synapse order, matching what a full compile produces from
	// the remaining-connection sweep.
	sort.Slice(merged.Synapses, func(i, j int) bool {
		a, b := merged.Synapses[i], merged.Synapses[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	if err := merged.Validate(net); err != nil {
		return nil, fmt.Errorf("autoncs: delta merge does not cover the edited network: %w", err)
	}
	return &deltaPlan{merged: merged, trace: trace, keptPrev: keptPrev}, nil
}

// translateCrossbar maps a crossbar clustered in residual-subgraph space
// back to global neuron ids via the active-neuron index list.
func translateCrossbar(cb Crossbar, active []int) Crossbar {
	out := Crossbar{
		Size:    cb.Size,
		Inputs:  make([]int, len(cb.Inputs)),
		Outputs: make([]int, len(cb.Outputs)),
		Conns:   make([]Edge, len(cb.Conns)),
	}
	for i, n := range cb.Inputs {
		out.Inputs[i] = active[n]
	}
	for i, n := range cb.Outputs {
		out.Outputs[i] = active[n]
	}
	for i, e := range cb.Conns {
		out.Conns[i] = Edge{From: active[e.From], To: active[e.To]}
	}
	return out
}

// physicalDelta runs netlist → place → route → cost on the merged
// assignment, warm-starting placement from the previous coordinates of
// every surviving cell and routing from the previous paths of every wire
// whose endpoints didn't move.
func (res *Result) physicalDelta(ctx context.Context, prev *Result, cfg Config, d *deltaPlan, stats *DeltaStats) error {
	ob := cfg.Observer

	prevNl := prev.Netlist
	if prevNl == nil {
		// A restored artifact always carries a netlist, but a caller may
		// hand us a stripped Result; Build is deterministic, so rebuilding
		// yields the exact netlist the previous coordinates are indexed by.
		var err error
		if prevNl, err = netlist.Build(prev.Assignment, cfg.Device); err != nil {
			return fmt.Errorf("autoncs: delta base netlist: %w", err)
		}
	}
	if len(prevNl.Cells) != len(prev.Placement.X) || len(prevNl.Wires) != len(prev.Routing.Paths) {
		return fmt.Errorf("autoncs: delta base result is inconsistent: %d cells / %d coords, %d wires / %d paths",
			len(prevNl.Cells), len(prev.Placement.X), len(prevNl.Wires), len(prev.Routing.Paths))
	}

	var nl *Netlist
	if err := res.runStage(ob, StageNetlist, func() error {
		var err error
		if nl, err = netlist.Build(res.Assignment, cfg.Device); err != nil {
			return fmt.Errorf("autoncs: netlist: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}

	// Map every new cell to its previous incarnation, if it has one. Cell
	// Refs are the stable identities: the crossbar index (translated
	// through keptPrev), the global neuron id, and the synapse's edge.
	prevXbarCell := make(map[int]int)
	prevSynCell := make(map[Edge]int)
	for _, c := range prevNl.Cells {
		switch c.Kind {
		case netlist.KindCrossbar:
			prevXbarCell[c.Ref] = c.ID
		case netlist.KindSynapse:
			prevSynCell[prev.Assignment.Synapses[c.Ref]] = c.ID
		}
	}
	cellPrev := make([]int, len(nl.Cells))
	for i, c := range nl.Cells {
		cellPrev[i] = -1
		switch c.Kind {
		case netlist.KindCrossbar:
			if c.Ref < len(d.keptPrev) {
				if id, ok := prevXbarCell[d.keptPrev[c.Ref]]; ok {
					cellPrev[i] = id
				}
			}
		case netlist.KindNeuron:
			if id, ok := prevNl.NeuronCell[c.Ref]; ok {
				cellPrev[i] = id
			}
		case netlist.KindSynapse:
			// Only a carried synapse can match a previous synapse edge:
			// residual edges were never synapses before.
			if id, ok := prevSynCell[res.Assignment.Synapses[c.Ref]]; ok {
				cellPrev[i] = id
			}
		}
	}

	pw := &place.Warm{
		X:      make([]float64, len(nl.Cells)),
		Y:      make([]float64, len(nl.Cells)),
		Seeded: make([]bool, len(nl.Cells)),
		MinX:   prev.Placement.MinX, MinY: prev.Placement.MinY,
		MaxX: prev.Placement.MaxX, MaxY: prev.Placement.MaxY,
	}
	seeded := 0
	for i, p := range cellPrev {
		if p >= 0 {
			pw.Seeded[i] = true
			pw.X[i], pw.Y[i] = prev.Placement.X[p], prev.Placement.Y[p]
			seeded++
		}
	}
	stats.Cells = len(nl.Cells)
	stats.SeededCells = seeded
	if len(nl.Cells) > 0 {
		stats.PlaceReuseFrac = float64(seeded) / float64(len(nl.Cells))
	}

	var pl *Placement
	if err := res.runStage(ob, StagePlace, func() error {
		var err error
		if pl, err = place.PlaceDeltaCtx(ctx, nl, placeOptions(cfg), pw); err != nil {
			return fmt.Errorf("autoncs: delta placement: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}

	// A previous path is only valid on an identical grid: same dimensions
	// AND same origin, i.e. the delta placement's bounding box must equal
	// the previous one exactly. New cells legalized inside the previous box
	// keep it unchanged (the box is a union); a spill enlarges it and
	// forces a full route.
	sameBox := pl.MinX == prev.Placement.MinX && pl.MinY == prev.Placement.MinY &&
		pl.MaxX == prev.Placement.MaxX && pl.MaxY == prev.Placement.MaxY
	stats.Wires = len(nl.Wires)
	var rt *Routing
	reused := 0
	if err := res.runStage(ob, StageRoute, func() error {
		var err error
		if !sameBox {
			stats.FullRoute = true
			rt, err = route.RouteCtx(ctx, nl, pl, routeOptions(cfg))
		} else {
			prevWire := make(map[[2]int]int, len(prevNl.Wires))
			for _, w := range prevNl.Wires {
				prevWire[[2]int{w.From, w.To}] = w.ID
			}
			rw := &route.Warm{
				Cols:          prev.Routing.Cols,
				Rows:          prev.Routing.Rows,
				Paths:         make([][]int, len(nl.Wires)),
				FinalCapacity: prev.Routing.FinalCapacity,
			}
			offered := 0
			for _, w := range nl.Wires {
				pf, pt := cellPrev[w.From], cellPrev[w.To]
				if pf < 0 || pt < 0 {
					continue
				}
				if id, ok := prevWire[[2]int{pf, pt}]; ok {
					rw.Paths[w.ID] = prev.Routing.Paths[id]
					offered++
				}
			}
			rt, reused, err = route.RouteDeltaCtx(ctx, nl, pl, routeOptions(cfg), rw)
			if err == nil && reused == 0 && offered > 0 {
				stats.FullRoute = true // negotiation stalled or the grid changed
			}
		}
		if err != nil {
			return fmt.Errorf("autoncs: delta routing: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	stats.ReusedWires = reused
	stats.ReroutedWires = len(nl.Wires) - reused
	if len(nl.Wires) > 0 {
		stats.RouteReuseFrac = float64(reused) / float64(len(nl.Wires))
	}

	var rep *CostReport
	if err := res.runStage(ob, StageCost, func() error {
		var err error
		if rep, err = cost.Evaluate(nl, pl, rt, cfg.Device, cfg.Cost); err != nil {
			return fmt.Errorf("autoncs: cost: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	res.Netlist, res.Placement, res.Routing, res.Report = nl, pl, rt, rep
	return nil
}
