package main

// End-to-end test against a real autoncsd binary. It is gated on the
// AUTONCSD_BIN environment variable so `go test ./...` stays hermetic:
//
//	go build -o /tmp/autoncsd ./cmd/autoncsd
//	AUTONCSD_BIN=/tmp/autoncsd go test -v -run TestDaemonE2E ./cmd/autoncsd/
//
// The daemon is started on an ephemeral port (-addr 127.0.0.1:0) and its
// address scraped from the startup line. The test proves the serving
// guarantees end to end: a repeated compile is a bit-identical cache hit
// visible in /metrics, two concurrent identical submissions coalesce onto
// one compile and return the same X-Autoncs-Key payload bytes (with the
// coalesced/cache-hit counters and per-request timing on /metrics),
// submissions beyond capacity get 429, and SIGTERM drains in-flight work
// before the process exits cleanly.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/client"
)

// startDaemon launches the binary and returns a client, the daemon's base
// URL (for raw HTTP assertions the client does not expose, like response
// headers), and the command handle (its process group is the test's to
// signal).
func startDaemon(t *testing.T, extraArgs ...string) (*client.Client, string, *exec.Cmd) {
	t.Helper()
	bin := os.Getenv("AUTONCSD_BIN")
	if bin == "" {
		t.Skip("AUTONCSD_BIN not set; build cmd/autoncsd and point AUTONCSD_BIN at it")
	}
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	lines := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	got := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "autoncsd listening on "); ok {
				got <- rest
				return
			}
		}
		close(got)
	}()
	select {
	case url, ok := <-got:
		if !ok {
			t.Fatal("daemon exited before printing its address")
		}
		return client.New(url), url, cmd
	case <-deadline:
		t.Fatal("daemon never printed its listening address")
		return nil, "", nil
	}
}

func TestDaemonE2E(t *testing.T) {
	c, baseURL, cmd := startDaemon(t, "-slots", "1", "-queue", "1")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %v / %+v", err, h)
	}

	// The README's 400-neuron example, compiled twice: the second request
	// must be served from the cache, bit-identically.
	req := client.CompileRequest{Random: &client.RandomSpec{N: 400, Sparsity: 0.94, Seed: 1}}
	first, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != client.StateDone || first.Cached {
		t.Fatalf("first compile: %+v", first)
	}
	firstBytes, err := c.ResultBytes(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Key != first.Key {
		t.Fatalf("second compile not a cache hit: %+v", second)
	}
	secondBytes, err := c.ResultBytes(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("cached result not bit-identical")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 {
		t.Fatalf("metrics cache_hits = %d, want 1", m.CacheHits)
	}
	if m.JobsCacheHits != 1 {
		t.Fatalf("metrics jobs_cache_hits = %d, want 1", m.JobsCacheHits)
	}

	// Two concurrent identical submissions of an uncached network: they
	// coalesce onto one compile and both return the same payload under the
	// same X-Autoncs-Key.
	dupReq := client.CompileRequest{Random: &client.RandomSpec{N: 400, Sparsity: 0.94, Seed: 2}}
	type dup struct {
		st  *client.JobStatus
		err error
	}
	dups := make(chan dup, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, err := c.CompileWait(ctx, dupReq)
			dups <- dup{st, err}
		}()
	}
	var dupJobs []*client.JobStatus
	for i := 0; i < 2; i++ {
		d := <-dups
		if d.err != nil {
			t.Fatalf("duplicate submission: %v", d.err)
		}
		if d.st.State != client.StateDone {
			t.Fatalf("duplicate submission ended %s: %s", d.st.State, d.st.Error)
		}
		dupJobs = append(dupJobs, d.st)
	}
	var dupPayloads [][]byte
	var dupKeys []string
	for _, st := range dupJobs {
		resp, err := http.Get(baseURL + st.ResultURL)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result fetch for %s: status %d", st.ID, resp.StatusCode)
		}
		dupPayloads = append(dupPayloads, payload)
		dupKeys = append(dupKeys, resp.Header.Get("X-Autoncs-Key"))
	}
	if dupKeys[0] == "" || dupKeys[0] != dupKeys[1] {
		t.Fatalf("X-Autoncs-Key headers differ or are missing: %q vs %q", dupKeys[0], dupKeys[1])
	}
	if !bytes.Equal(dupPayloads[0], dupPayloads[1]) {
		t.Fatal("coalesced duplicate payload not bit-identical")
	}
	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The pair ran exactly one compile: two so far in this daemon's life
	// (the first request's, and this one).
	if m.Compiles != 2 || m.JobsCompleted != 2 {
		t.Fatalf("compiles %d jobs_completed %d after the duplicate pair, want 2/2", m.Compiles, m.JobsCompleted)
	}
	if m.JobsCoalesced != 1 {
		t.Fatalf("metrics jobs_coalesced = %d, want 1", m.JobsCoalesced)
	}
	if m.RequestRecords == 0 || m.LastRequest == nil {
		t.Fatalf("per-request timing missing from /metrics: records=%d last=%v", m.RequestRecords, m.LastRequest)
	}

	// Saturate the single slot + single queue entry with slow fresh
	// compiles; the next submission must bounce with 429.
	var ids []string
	sawReject := false
	for seed := int64(10); seed < 16; seed++ {
		st, err := c.Compile(ctx, client.CompileRequest{Random: &client.RandomSpec{N: 400, Sparsity: 0.94, Seed: seed}})
		if err == nil {
			ids = append(ids, st.ID)
			continue
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
			t.Fatalf("saturation submit: %v, want 429", err)
		}
		if apiErr.RetryAfter <= 0 {
			t.Errorf("429 without Retry-After: %+v", apiErr)
		}
		sawReject = true
		break
	}
	if !sawReject {
		t.Fatal("queue never saturated (slots=1 queue=1 accepted 6 jobs)")
	}
	if len(ids) == 0 {
		t.Fatal("no job accepted before saturation")
	}

	// SIGTERM with those jobs still in flight: the daemon must finish them
	// (drain) and exit 0. Blocking watchers attach first — the daemon keeps
	// its listener open until the drain completes, so each watcher receives
	// the terminal state before the process exits.
	type watch struct {
		id  string
		st  *client.JobStatus
		err error
	}
	watches := make(chan watch, len(ids))
	for _, id := range ids {
		go func(id string) {
			st, err := c.JobWait(ctx, id)
			watches <- watch{id, st, err}
		}(id)
	}
	time.Sleep(200 * time.Millisecond) // let the watchers connect
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for range ids {
		wr := <-watches
		if wr.err != nil {
			t.Fatalf("watching %s during drain: %v", wr.id, wr.err)
		}
		if wr.st.State != client.StateDone {
			t.Errorf("job %s ended %s after SIGTERM, want done (drain must finish in-flight work)", wr.id, wr.st.State)
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}

// TestDaemonDeltaE2E drives the incremental-recompile protocol against a
// real daemon: a full compile leaves an artifact, an edited resubmission
// with ?base=<key> (the query-parameter spelling) runs as a delta whose
// X-Autoncs-Key lineage is bit-stable — the identical delta resubmitted
// through the client's Base field hits the cache under the same key with
// byte-identical payload — and a config-vector mismatch is the typed 409.
func TestDaemonDeltaE2E(t *testing.T) {
	c, baseURL, _ := startDaemon(t, "-slots", "1")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	base, err := c.CompileWait(ctx, client.CompileRequest{Random: &client.RandomSpec{N: 240, Sparsity: 0.95, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if base.State != client.StateDone {
		t.Fatalf("base compile: %+v", base)
	}

	// The same network the daemon built, with a small localized edit: two
	// connections removed in one window, two added in a disjoint one.
	edited := autoncs.RandomSparseNetwork(240, 0.95, 3).Clone()
	removed, added := 0, 0
	for i := 10; i < 40 && removed < 2; i++ {
		for j := 10; j < 40; j++ {
			if i != j && edited.Has(i, j) {
				edited.Clear(i, j)
				removed++
				break
			}
		}
	}
	for i := 60; i < 90 && added < 2; i++ {
		for j := 60; j < 90; j++ {
			if i != j && !edited.Has(i, j) {
				edited.Set(i, j)
				added++
				break
			}
		}
	}
	if removed != 2 || added != 2 {
		t.Fatalf("edit construction removed %d added %d, want 2/2", removed, added)
	}
	var netText strings.Builder
	if err := edited.Write(&netText); err != nil {
		t.Fatal(err)
	}

	// First delta through the raw query-parameter spelling.
	body, err := json.Marshal(client.CompileRequest{Net: netText.String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/compile?wait=1&base="+base.Key, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var delta client.JobStatus
	derr := json.NewDecoder(resp.Body).Decode(&delta)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if resp.StatusCode != http.StatusOK || delta.State != client.StateDone {
		t.Fatalf("delta compile: status %d %+v", resp.StatusCode, delta)
	}
	if delta.BaseKey != base.Key {
		t.Fatalf("delta base_key %q, want %q", delta.BaseKey, base.Key)
	}
	if delta.Key == base.Key {
		t.Fatal("delta result key equals the base key")
	}

	// X-Autoncs-Key lineage: the result serves under the delta key, and the
	// identical resubmission (client Base field this time) is a cache hit
	// with byte-identical payload under the same key.
	resp, err = http.Get(baseURL + delta.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	deltaBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Autoncs-Key"); got != delta.Key {
		t.Fatalf("X-Autoncs-Key %q, want delta key %q", got, delta.Key)
	}
	again, err := c.CompileWait(ctx, client.CompileRequest{Net: netText.String(), Seed: 1, Base: base.Key})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != delta.Key || again.BaseKey != base.Key {
		t.Fatalf("delta resubmission: cached %v key %s base %s", again.Cached, again.Key, again.BaseKey)
	}
	againBytes, err := c.ResultBytes(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deltaBytes, againBytes) {
		t.Fatal("delta lineage not bit-stable: cached payload differs")
	}

	// Typed 409: a delta request under a different config vector.
	_, err = c.CompileWait(ctx, client.CompileRequest{Net: netText.String(), Seed: 2, Base: base.Key})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != client.CodeBaseConfigMismatch {
		t.Fatalf("config mismatch: want 409 %s, got %v", client.CodeBaseConfigMismatch, err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeltaCompiles != 1 || m.LastDelta == nil {
		t.Fatalf("delta metrics: compiles %d last %v", m.DeltaCompiles, m.LastDelta)
	}
	if m.LastDelta.ClusterReuseFrac == 0 || m.LastDelta.RouteReuseFrac == 0 {
		t.Errorf("delta reused nothing: %+v", m.LastDelta)
	}
}

// TestDaemonDiskCache restarts the daemon over the same -cache-dir and
// checks the second process serves the first one's result from disk.
func TestDaemonDiskCache(t *testing.T) {
	if os.Getenv("AUTONCSD_BIN") == "" {
		t.Skip("AUTONCSD_BIN not set")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	req := client.CompileRequest{Random: &client.RandomSpec{N: 200, Sparsity: 0.94, Seed: 1}, SkipPhysical: true}

	c1, _, cmd1 := startDaemon(t, "-cache-dir", dir)
	first, err := c1.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	firstBytes, err := c1.ResultBytes(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	cmd1.Process.Signal(syscall.SIGTERM)
	if err := cmd1.Wait(); err != nil {
		t.Fatalf("first daemon exit: %v", err)
	}

	c2, _, _ := startDaemon(t, "-cache-dir", dir)
	second, err := c2.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("restarted daemon recompiled instead of reading the disk cache")
	}
	secondBytes, err := c2.ResultBytes(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("disk-cached result not bit-identical across restarts")
	}
}
