// Command autoncsd serves the AutoNCS flow over HTTP: compile jobs are
// submitted as JSON, executed on a bounded worker pool, and answered from a
// content-addressed result cache when the same network/config pair has been
// compiled before. Identical submissions in flight coalesce onto a single
// compile (single-flight keyed by the content address), and jobs carry a
// two-level priority — interactive work jumps the batch queue.
//
// Usage:
//
//	autoncsd                           # serve on :8080, in-memory cache
//	autoncsd -addr 127.0.0.1:0         # ephemeral port (printed on stdout)
//	autoncsd -cache-dir /var/autoncs   # persist results across restarts
//
// Several daemons form a compile fleet: each is given its own base URL
// (-self) and the full membership list (-peers), keys are sharded across
// the members by consistent hashing, and a local cache miss for a key
// owned by a remote peer is answered from that peer's cache (see
// docs/fleet.md):
//
//	autoncsd -addr :8081 -self http://10.0.0.1:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081,http://10.0.0.3:8081
//
// On SIGINT/SIGTERM the daemon stops accepting work, runs the accepted
// queue to completion (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		slots        = flag.Int("slots", 0, "concurrent compile slots (0 = 2)")
		queue        = flag.Int("queue", 0, "bounded job-queue depth beyond the running slots (0 = 8)")
		workers      = flag.Int("workers", 0, "worker-pool size per compile (0 = NumCPU/slots)")
		batchSize    = flag.Int("batch-size", 0, "admission batcher max batch size (0 = 16)")
		batchWindow  = flag.Duration("batch-window", 0, "how long admission waits to fill a batch (0 = 2ms)")
		cacheDir     = flag.String("cache-dir", "", "directory for the on-disk result cache (empty = memory only)")
		cacheEntries = flag.Int("cache-entries", 0, "max in-memory cached results (0 = 256, -1 disables the memory layer)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs before cancelling them")
		self         = flag.String("self", "", "this daemon's own base URL in the fleet (e.g. http://10.0.0.1:8080; empty disables peering)")
		peers        = flag.String("peers", "", "comma-separated fleet membership base URLs (self is added if absent; requires -self)")
		peerTimeout  = flag.Duration("peer-timeout", 0, "per-attempt peer cache probe timeout (0 = 2s)")
		peerRecovery = flag.Duration("peer-recovery", 0, "how long a dead peer stays out of the ring before a re-probe (0 = 5s)")
		deltaRatio   = flag.Float64("delta-max-ratio", 0, "edit-ratio cutoff for ?base= delta recompiles (0 = 0.1, negative disables delta serving)")
		verbose      = flag.Bool("v", false, "debug-level request and job logging")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if len(peerList) > 0 && *self == "" {
		fmt.Fprintln(os.Stderr, "autoncsd: -peers requires -self")
		os.Exit(2)
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	store, err := cache.New(cache.Options{MaxEntries: *cacheEntries, Dir: *cacheDir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoncsd: cache:", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Options{
		Slots:                *slots,
		QueueDepth:           *queue,
		CompileWorkers:       *workers,
		AdmitBatch:           *batchSize,
		AdmitWindow:          *batchWindow,
		DeltaMaxEditRatio:    *deltaRatio,
		Cache:                store,
		Log:                  log,
		Self:                 *self,
		Peers:                peerList,
		PeerTimeout:          *peerTimeout,
		PeerRecoveryInterval: *peerRecovery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoncsd:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoncsd:", err)
		os.Exit(1)
	}
	// This line is the machine-readable startup handshake: the e2e harness
	// starts the daemon on port 0 and scrapes the resolved address from it.
	fmt.Printf("autoncsd listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case s := <-sig:
		log.Info("shutting down", "signal", s.String(), "drain_timeout", *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "autoncsd: serve:", err)
		srv.Close()
		os.Exit(1)
	}

	// Drain first so in-flight wait=1 requests resolve with finished jobs,
	// then close the HTTP side. A second signal aborts immediately.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		log.Warn("second signal, aborting drain")
		cancel()
	}()
	drainErr := srv.Drain(dctx)
	cancel()

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "autoncsd: drain:", drainErr)
		os.Exit(1)
	}
	log.Info("drained, bye")
}
