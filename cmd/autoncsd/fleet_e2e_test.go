package main

// Three-daemon fleet end-to-end test, gated on AUTONCSD_BIN like
// e2e_test.go:
//
//	go build -o /tmp/autoncsd ./cmd/autoncsd
//	AUTONCSD_BIN=/tmp/autoncsd go test -v -run TestFleet ./cmd/autoncsd/
//
// It proves the peer cache protocol across real processes: a compile
// cached on its consistent-hash owner is served to a sibling daemon as a
// peer hit (bit-identical payload, peer provenance on the job, peer_hits
// on /metrics), the raw /v1/cache/{key} endpoint answers GET and HEAD
// with the content address echoed, and SIGKILLing the owner leaves the
// survivors serving — the shard-aware client fails over, the dead peer
// falls out of the ring (peers_alive decrements), and no request errors.

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/client"
)

// reserveAddrs binds n ephemeral ports and releases them immediately:
// fleet members must know each other's URLs before any of them starts, so
// ephemeral -addr 127.0.0.1:0 cannot work here.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// fleetE2EReq compiles in well under a second (clustering only).
func fleetE2EReq(seed int64) client.CompileRequest {
	return client.CompileRequest{
		Random:       &client.RandomSpec{N: 200, Sparsity: 0.94, Seed: 3},
		Seed:         seed,
		SkipPhysical: true,
	}
}

func TestFleetE2E(t *testing.T) {
	if os.Getenv("AUTONCSD_BIN") == "" {
		t.Skip("AUTONCSD_BIN not set; build cmd/autoncsd and point AUTONCSD_BIN at it")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	addrs := reserveAddrs(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")

	cls := make([]*client.Client, 3)
	cmds := make([]*exec.Cmd, 3)
	for i := range urls {
		c, _, cmd := startDaemon(t,
			"-addr", addrs[i], "-self", urls[i], "-peers", peers,
			"-slots", "1", "-peer-timeout", "2s", "-peer-recovery", "1h")
		cls[i] = c
		cmds[i] = cmd
	}

	// The fleet client shares the daemons' key derivation and ring layout.
	fl, err := client.NewFleetWith(urls, client.FleetOptions{FailureThreshold: 1, RecoveryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	// Find requests owned by daemon 0 (the one this test will kill).
	var ownedSeeds []int64
	for seed := int64(1); seed < 2000 && len(ownedSeeds) < 4; seed++ {
		owner, err := fl.Owner(fleetE2EReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if owner == urls[0] {
			ownedSeeds = append(ownedSeeds, seed)
		}
	}
	if len(ownedSeeds) < 4 {
		t.Fatalf("only %d of 1999 seeds owned by daemon 0 (implausible)", len(ownedSeeds))
	}
	req := fleetE2EReq(ownedSeeds[0])

	// Compile on the owner, then submit the same request to daemon 1: it
	// must be answered from daemon 0's cache through the peer protocol.
	first, err := cls[0].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != client.StateDone || first.Cached {
		t.Fatalf("owner compile: %+v", first)
	}
	firstBytes, err := cls[0].ResultBytes(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cls[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Peer != urls[0] {
		t.Fatalf("sibling submission: cached=%v peer=%q, want a peer hit from %s",
			second.Cached, second.Peer, urls[0])
	}
	secondBytes, err := cls[1].ResultBytes(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("peer-served payload not bit-identical to the owner's")
	}
	m, err := cls[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerHits != 1 || m.PeerErrors != 0 || m.Peers != 3 || m.PeersAlive != 3 {
		t.Fatalf("sibling metrics: hits=%d errors=%d peers=%d alive=%d, want 1/0/3/3",
			m.PeerHits, m.PeerErrors, m.Peers, m.PeersAlive)
	}
	if m.JobsCompleted != 0 {
		t.Fatalf("sibling ran %d compiles for a peer-served key", m.JobsCompleted)
	}

	// The raw peer protocol surface on the owner: GET serves the payload
	// with the content address echoed, HEAD probes it for free.
	resp, err := http.Get(urls[0] + "/v1/cache/" + first.Key)
	if err != nil {
		t.Fatal(err)
	}
	cacheBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Autoncs-Key") != first.Key {
		t.Fatalf("GET /v1/cache: status %d key %q", resp.StatusCode, resp.Header.Get("X-Autoncs-Key"))
	}
	if !bytes.Equal(cacheBytes, firstBytes) {
		t.Fatal("/v1/cache payload differs from /v1/results payload")
	}
	head, err := http.Head(urls[0] + "/v1/cache/" + first.Key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, head.Body) //nolint:errcheck
	head.Body.Close()
	if head.StatusCode != http.StatusOK || head.ContentLength != int64(len(firstBytes)) {
		t.Fatalf("HEAD /v1/cache: status %d length %d, want 200/%d",
			head.StatusCode, head.ContentLength, len(firstBytes))
	}

	// Kill the owner outright (no drain) and keep submitting its keys
	// through the shard-aware client: every submission must still succeed
	// via ring failover, and the survivors must take the dead peer out of
	// the ring instead of erroring.
	if err := cmds[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[0].Wait() //nolint:errcheck // killed: non-zero exit is expected

	for _, seed := range ownedSeeds[1:] {
		st, peer, err := fl.Submit(ctx, fleetE2EReq(seed), true)
		if err != nil {
			t.Fatalf("submission after owner death: %v", err)
		}
		if st.State != client.StateDone {
			t.Fatalf("submission after owner death ended %s via %s", st.State, peer)
		}
		if peer == urls[0] {
			t.Fatal("fleet client routed to the killed daemon")
		}
	}

	// The survivors' lookups against the dead owner open its breaker:
	// peers_alive drops to 2 with the errors accounted. Which survivor
	// crossed the threshold depends on key placement, so accept either.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := false
		for i := 1; i < 3; i++ {
			m, err := cls[i].Metrics(ctx)
			if err != nil {
				t.Fatalf("metrics from survivor %d: %v", i, err)
			}
			if m.PeersAlive == 2 && m.PeerErrors > 0 {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no survivor took the dead peer out of its ring within 30s")
		}
		// More A-owned traffic drives the survivors' breakers over the
		// threshold.
		if _, _, err := fl.Submit(ctx, fleetE2EReq(ownedSeeds[1]), true); err != nil {
			t.Fatalf("follow-up submission: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Both survivors still serve fresh work end to end.
	for i := 1; i < 3; i++ {
		st, err := cls[i].CompileWait(ctx, client.CompileRequest{
			Random: &client.RandomSpec{N: 120, Sparsity: 0.9, Seed: int64(40 + i)}, SkipPhysical: true,
		})
		if err != nil || st.State != client.StateDone {
			t.Fatalf("survivor %d compile after owner death: %v / %+v", i, err, st)
		}
	}
}
