package main

import (
	"context"
	"fmt"
	"time"

	autoncs "repro"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// routeStage benchmarks the routing stage in isolation on the flow's real
// workload: the clustered (ISC) netlist of an n-neuron sparse network,
// placed once and then routed by the legacy capacity-relaxation engine and
// by the negotiated-congestion engine, with wall time, wirelength, peak bin
// congestion, and search work side by side — the explicit quality
// accounting of the negotiated path. Every reported counter is
// deterministic for any -workers value; only the wall times vary.
func routeStage(ctx context.Context, n int, seed int64, workers int, rec *reporter) error {
	header(fmt.Sprintf("route — legacy vs negotiated-congestion router (%d neurons, clustered)", n))
	net := autoncs.RandomSparseNetwork(n, 0.94, seed)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.SkipPhysical = true
	clustered, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		return err
	}
	nl, err := netlist.Build(clustered.Assignment, cfg.Device)
	if err != nil {
		return err
	}
	popts := place.DefaultOptions()
	popts.Workers = workers
	pl, err := place.PlaceCtx(ctx, nl, popts)
	if err != nil {
		return err
	}
	fmt.Printf("netlist: %d cells, %d wires\n", len(nl.Cells), len(nl.Wires))

	type outcome struct {
		wall time.Duration
		res  *route.Result
	}
	engine := func(negotiate bool) (outcome, error) {
		opts := route.DefaultOptions()
		opts.Workers = workers
		opts.Negotiate = negotiate
		start := time.Now()
		res, err := route.RouteCtx(ctx, nl, pl, opts)
		if err != nil {
			return outcome{}, err
		}
		return outcome{wall: time.Since(start), res: res}, nil
	}
	legacy, err := engine(false)
	if err != nil {
		return fmt.Errorf("legacy: %w", err)
	}
	neg, err := engine(true)
	if err != nil {
		return fmt.Errorf("negotiated: %w", err)
	}
	fmt.Printf("legacy:     %8.3fs  wirelength %.0f µm, max bin %d, capacity %d (%d relaxations), %d expansions\n",
		legacy.wall.Seconds(), legacy.res.Total, legacy.res.MaxUsage(),
		legacy.res.FinalCapacity, legacy.res.Relaxations, legacy.res.Expansions)
	fmt.Printf("negotiated: %8.3fs  wirelength %.0f µm, max bin %d, capacity %d, %d expansions\n",
		neg.wall.Seconds(), neg.res.Total, neg.res.MaxUsage(),
		neg.res.FinalCapacity, neg.res.Expansions)
	fmt.Printf("negotiation: %d rounds, %d rip-ups, peak %d overused edges\n",
		neg.res.Rounds, neg.res.RipUps, neg.res.OverusedPeak)
	if legacy.wall > 0 {
		fmt.Printf("route speedup: %.2fx\n", legacy.wall.Seconds()/neg.wall.Seconds())
	}
	rec.metric("wires", float64(len(nl.Wires)))
	rec.metric("legacy_seconds", legacy.wall.Seconds())
	rec.metric("legacy_wirelength_um", legacy.res.Total)
	rec.metric("legacy_max_usage", float64(legacy.res.MaxUsage()))
	rec.metric("legacy_expansions", float64(legacy.res.Expansions))
	rec.metric("legacy_relaxations", float64(legacy.res.Relaxations))
	rec.metric("negotiated_seconds", neg.wall.Seconds())
	rec.metric("negotiated_wirelength_um", neg.res.Total)
	rec.metric("negotiated_max_usage", float64(neg.res.MaxUsage()))
	rec.metric("negotiated_expansions", float64(neg.res.Expansions))
	rec.metric("negotiated_rounds", float64(neg.res.Rounds))
	rec.metric("negotiated_ripups", float64(neg.res.RipUps))
	return nil
}
