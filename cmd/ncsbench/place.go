package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/xbar"
)

// placeStage benchmarks the placement engine in isolation on a FullCro
// netlist of an n-neuron sparse network — the congested single-stage
// workload the multigrid/parallel rework targets. Beyond wall time it
// reports the solver and detailed-placement counters (field solves,
// V-cycles, red-black sweeps, swap candidates/accepts), all of which are
// deterministic for any -workers value.
func placeStage(ctx context.Context, n int, seed int64, workers int, rec *reporter) error {
	header(fmt.Sprintf("place — multigrid placement engine (%d neurons, FullCro)", n))
	rng := rand.New(rand.NewSource(seed))
	cm := graph.RandomSparse(n, 0.94, rng)
	nl, err := netlist.Build(xbar.FullCro(cm, xbar.DefaultLibrary()), xbar.Default45nm())
	if err != nil {
		return err
	}
	opts := place.DefaultOptions()
	opts.Workers = workers
	start := time.Now()
	res, err := place.PlaceCtx(ctx, nl, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Printf("netlist: %d cells, %d wires\n", len(nl.Cells), len(nl.Wires))
	fmt.Printf("wall %.3fs over %d λ rounds: %d field solves, %d V-cycles, %d red-black sweeps\n",
		wall.Seconds(), res.Outer, res.FieldSolves, res.VCycles, res.FieldSweeps)
	fmt.Printf("detailed placement: %d swaps accepted of %d candidates\n",
		res.SwapsAccepted, res.SwapCandidates)
	fmt.Printf("HPWL %.1f µm (initial %.1f, global %.1f), area %.0f µm²\n",
		res.HPWL, res.InitialHPWL, res.GlobalHPWL, res.Area())
	rec.metric("wall_seconds", wall.Seconds())
	rec.metric("hpwl_um", res.HPWL)
	rec.metric("global_hpwl_um", res.GlobalHPWL)
	rec.metric("area_um2", res.Area())
	rec.metric("outer_rounds", float64(res.Outer))
	rec.metric("field_solves", float64(res.FieldSolves))
	rec.metric("vcycles", float64(res.VCycles))
	rec.metric("field_sweeps", float64(res.FieldSweeps))
	rec.metric("swap_candidates", float64(res.SwapCandidates))
	rec.metric("swaps_accepted", float64(res.SwapsAccepted))
	return nil
}
