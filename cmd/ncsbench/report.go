package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	autoncs "repro"
)

// StageStats is one experiment stage of a BenchReport: wall time, the
// allocation counters of the Go runtime across the stage, and the paper
// metrics the stage produced.
type StageStats struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs and AllocBytes are the runtime.MemStats deltas (Mallocs,
	// TotalAlloc) over the stage: total heap objects and bytes allocated,
	// regardless of later collection.
	Allocs     uint64             `json:"allocs"`
	AllocBytes uint64             `json:"alloc_bytes"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// StageTimes breaks the stage's wall time down by compile pipeline
	// stage (clustering, netlist, place, route, cost), in seconds — filled
	// from Result.StageTimes by the stages that run the full flow.
	StageTimes map[string]float64 `json:"stage_times_seconds,omitempty"`
}

// Baseline pins the pre-optimization reference measurement of one stage so
// the report carries its own comparison. Stage names which stage the ratios
// were computed against (-baseline-stage; compile2000 when omitted).
type Baseline struct {
	Ref         string  `json:"ref,omitempty"`
	Stage       string  `json:"stage,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
}

// BenchReport is the machine-readable run record written by -benchout.
// README.md ("Performance") documents how to read it.
type BenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's parallelism cap at run time — the
	// number that actually bounds the worker pools, as opposed to NumCPU.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GitCommit and GitDirty identify the source the binary was built from
	// (debug.BuildInfo vcs stamps; empty when built outside a checkout).
	GitCommit string       `json:"git_commit,omitempty"`
	GitDirty  bool         `json:"git_dirty,omitempty"`
	Seed      int64        `json:"seed"`
	Workers   int          `json:"workers"`
	Quick     bool         `json:"quick"`
	Large     bool         `json:"large"`
	Stages    []StageStats `json:"stages"`
	// Baseline and the two ratios are present when -baseline-wall /
	// -baseline-allocs were given and the -baseline-stage stage ran:
	// SpeedupWall = baseline wall / current wall, AllocsRatio = baseline
	// allocs / current allocs (higher is better for both).
	Baseline    *Baseline `json:"baseline,omitempty"`
	SpeedupWall float64   `json:"speedup_wall,omitempty"`
	AllocsRatio float64   `json:"allocs_ratio,omitempty"`
}

// reporter accumulates per-stage stats while the experiments print their
// terminal renditions. A nil reporter is inert, so the instrumentation
// costs nothing when -benchout is unset.
type reporter struct {
	rep   BenchReport
	stage *StageStats
}

func newReporter(seed int64, workers int, quick, large bool) *reporter {
	commit, dirty := vcsStamp()
	return &reporter{rep: BenchReport{
		GeneratedBy: "cmd/ncsbench",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GitCommit:   commit,
		GitDirty:    dirty,
		Seed:        seed,
		Workers:     workers,
		Quick:       quick,
		Large:       large,
	}}
}

// vcsStamp extracts the commit the binary was built from out of the build
// info the Go toolchain embeds. `go run`/`go test` binaries and builds
// outside a git checkout carry no stamp; both report empty.
func vcsStamp() (commit string, dirty bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			commit = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return commit, dirty
}

// run times f as one named stage, capturing the allocation deltas.
func (r *reporter) run(name string, f func() error) error {
	if r == nil {
		return f()
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	r.stage = &StageStats{Name: name}
	start := time.Now()
	err := f()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	r.stage.WallSeconds = wall.Seconds()
	r.stage.Allocs = after.Mallocs - before.Mallocs
	r.stage.AllocBytes = after.TotalAlloc - before.TotalAlloc
	r.rep.Stages = append(r.rep.Stages, *r.stage)
	r.stage = nil
	return err
}

// stageTimes attaches a compile's per-stage wall-time breakdown to the
// stage currently running.
func (r *reporter) stageTimes(st map[autoncs.Stage]time.Duration) {
	if r == nil || r.stage == nil || len(st) == 0 {
		return
	}
	if r.stage.StageTimes == nil {
		r.stage.StageTimes = make(map[string]float64, len(st))
	}
	for s, d := range st {
		r.stage.StageTimes[string(s)] = d.Seconds()
	}
}

// metric attaches a named value to the stage currently running.
func (r *reporter) metric(name string, v float64) {
	if r == nil || r.stage == nil {
		return
	}
	if r.stage.Metrics == nil {
		r.stage.Metrics = make(map[string]float64)
	}
	r.stage.Metrics[name] = v
}

// setBaseline embeds the pre-optimization reference of the named stage and
// computes the speedup ratios against the stage of the same name.
func (r *reporter) setBaseline(stage, ref string, wallSeconds float64, allocs uint64) {
	if r == nil || (wallSeconds == 0 && allocs == 0) {
		return
	}
	r.rep.Baseline = &Baseline{Ref: ref, Stage: stage, WallSeconds: wallSeconds, Allocs: allocs}
	for _, st := range r.rep.Stages {
		if st.Name != stage {
			continue
		}
		if st.WallSeconds > 0 && wallSeconds > 0 {
			r.rep.SpeedupWall = wallSeconds / st.WallSeconds
		}
		if st.Allocs > 0 && allocs > 0 {
			r.rep.AllocsRatio = float64(allocs) / float64(st.Allocs)
		}
	}
}

// write emits the report as indented JSON.
func (r *reporter) write(path string) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(&r.rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write bench report: %w", err)
	}
	return nil
}
