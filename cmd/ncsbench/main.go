// Command ncsbench regenerates every table and figure of the paper's
// evaluation section (DAC'15, Section 4) and prints them in a terminal
// rendition: Figure 3 (MSC before/after), Figure 4 (GCP vs traversing),
// Figures 5-6 (ISC iterations on the 400×400 example), Figures 7-9 (ISC
// efficacy per testbench), Figure 10 (placement and congestion maps of
// testbench 3), and Table 1 (wirelength/area/delay vs the FullCro
// baseline).
//
// The full paper-scale run takes several minutes; -quick runs scaled-down
// versions of everything in well under a minute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"text/tabwriter"
	"time"

	autoncs "repro"
	"repro/internal/experiments"
	"repro/internal/hopfield"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/viz"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run scaled-down versions of every experiment")
		only    = flag.String("only", "", "run a single experiment: fig3, fig4, fig56, fig7, fig8, fig9, fig10, table1, place, route, compile, cluster, reliability, fidelity, compile2000, compile10k, delta")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker pool size for the parallel kernels (0 = NumCPU; results are identical for any value)")
		large   = flag.Bool("large", false, "also run compile2000, the 2000-neuron cluster-only compile (minutes of CPU time)")
		verbose = flag.Bool("v", false, "log compile stage boundaries and ISC iterations to stderr")
		trace   = flag.Bool("trace", false, "log every compile event to stderr, including placement checkpoints and route batches (implies -v)")

		benchout   = flag.String("benchout", "", "write a machine-readable JSON benchmark report (per-stage wall time, allocations, paper metrics) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (taken after all stages) to this file")

		baselineWall   = flag.Float64("baseline-wall", 0, "pre-optimization wall seconds of the -baseline-stage stage to embed in the report")
		baselineAllocs = flag.Uint64("baseline-allocs", 0, "pre-optimization allocation count of the -baseline-stage stage to embed in the report")
		baselineRef    = flag.String("baseline-ref", "", "description of the baseline build (e.g. a commit) for the report")
		baselineStage  = flag.String("baseline-stage", "compile2000", "stage the baseline numbers refer to (speedup ratios compare against it)")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d (want ≥ 0)\n", *workers)
		os.Exit(2)
	}
	parallel.SetDefault(*workers)

	// Ctrl-C cancels the current experiment cooperatively; the run exits
	// with the conventional 130 once the in-flight stage unwinds.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var rec *reporter
	if *benchout != "" {
		rec = newReporter(*seed, *workers, *quick, *large)
	}

	n := 400
	maxSize := 64
	tbs := hopfield.Testbenches()
	if *quick {
		n = 150
		maxSize = 32
		for i := range tbs {
			tbs[i].M = 6 + 2*i
			tbs[i].N = 100 + 40*i
			tbs[i].Sparsity = 0.93
		}
	}

	observer := stderrObserver(*verbose, *trace)

	run := func(name string, f func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := rec.run(name, f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			os.Exit(1)
		}
	}

	run("fig3", func() error { return figure3(n, maxSize, *seed, rec) })
	run("fig4", func() error { return figure4(n, maxSize, *seed, rec) })
	run("fig56", func() error { return figure56(ctx, n, *seed, rec) })
	run("fig7", func() error { return figureISC(ctx, tbs[0], 7, *seed, rec) })
	run("fig8", func() error { return figureISC(ctx, tbs[1], 8, *seed, rec) })
	run("fig9", func() error { return figureISC(ctx, tbs[2], 9, *seed, rec) })
	run("fig10", func() error { return figure10(ctx, tbs[2], *seed, rec) })
	run("table1", func() error { return table1(ctx, tbs, *seed, rec) })
	run("place", func() error { return placeStage(ctx, n, *seed, *workers, rec) })
	run("route", func() error { return routeStage(ctx, n, *seed, *workers, rec) })
	run("compile", func() error { return compileBreakdown(ctx, n, *seed, *workers, observer, rec) })
	run("cluster", func() error { return clusterStage(ctx, *quick, *seed, *workers, observer, rec) })
	run("reliability", func() error { return reliability(*quick, *seed) })
	run("fidelity", func() error { return fidelity(*quick, *seed) })
	if *large || *only == "compile2000" {
		run("compile2000", func() error { return compile2000(ctx, *seed, *workers, observer, rec) })
	}
	if *large || *quick || *only == "compile10k" {
		run("compile10k", func() error { return compile10k(ctx, *quick, *seed, *workers, observer, rec) })
	}
	if *large || *quick || *only == "delta" {
		run("delta", func() error { return deltaStage(ctx, *quick, *seed, *workers, observer, rec) })
	}

	rec.setBaseline(*baselineStage, *baselineRef, *baselineWall, *baselineAllocs)
	if *benchout != "" {
		if err := rec.write(*benchout); err != nil {
			fmt.Fprintf(os.Stderr, "benchout: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nbenchmark report written to %s\n", *benchout)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// stderrObserver maps the -v/-trace flags to a slog observer on stderr:
// -v shows stage boundaries, ISC iterations, and relaxations (Info); -trace
// additionally shows placement checkpoints and route batches (Debug).
func stderrObserver(verbose, trace bool) autoncs.Observer {
	if !verbose && !trace {
		return nil
	}
	level := slog.LevelInfo
	if trace {
		level = slog.LevelDebug
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	return autoncs.NewSlogObserver(slog.New(h))
}

// compileBreakdown runs one full physical compile and reports where the
// wall time goes, stage by stage, through Result.StageTimes.
func compileBreakdown(ctx context.Context, n int, seed int64, workers int, ob autoncs.Observer, rec *reporter) error {
	header(fmt.Sprintf("compile — full-flow stage breakdown (%d neurons)", n))
	net := autoncs.RandomSparseNetwork(n, 0.94, seed)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = ob
	res, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		return err
	}
	total := time.Duration(0)
	for _, s := range autoncs.Stages() {
		total += res.StageTimes[s]
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\twall time\tshare")
	for _, s := range autoncs.Stages() {
		d := res.StageTimes[s]
		share := 0.0
		if total > 0 {
			share = float64(d) / float64(total)
		}
		fmt.Fprintf(w, "%s\t%v\t%.1f%%\n", s, d.Round(time.Microsecond), 100*share)
	}
	fmt.Fprintf(w, "total\t%v\t\n", total.Round(time.Microsecond))
	w.Flush()
	fmt.Printf("cost: wirelength %.1f µm, area %.2f µm², avg delay %.3f ns\n",
		res.Report.Wirelength, res.Report.Area, res.Report.AvgDelay)
	rec.stageTimes(res.StageTimes)
	rec.metric("total_seconds", total.Seconds())
	rec.metric("wirelength_um", res.Report.Wirelength)
	return nil
}

// compile2000 is the large-scale stage: the same 2000-neuron cluster-only
// compile BenchmarkCompile2000 times (the regime the paper's introduction
// motivates), run once so the report captures paper-scale wall time and
// allocation behaviour. Since the multilevel engine landed this stage runs
// it (the flat engine spent the entire 1443s baseline wall in clustering);
// the engine counters go into the report alongside the quality metrics.
//
// The stopping threshold is explicit: for this network the auto threshold
// (the FullCro baseline's 0.014 average utilization) never binds — every
// ISC round stays above it, so the loop used to run to exhaustion and
// report a degenerate all-crossbar result with zero discrete synapses.
// 0.04 stops the loop once placed-crossbar utilization decays below 4%,
// leaving the thin remainder as discrete synapses like the paper's hybrid
// flow intends (and like compile10k already reports).
func compile2000(ctx context.Context, seed int64, workers int, ob autoncs.Observer, rec *reporter) error {
	header("compile2000 — 2000-neuron cluster-only compile (multilevel engine)")
	net := autoncs.RandomSparseNetwork(2000, 0.985, seed)
	cfg := autoncs.DefaultConfig()
	cfg.SkipPhysical = true
	cfg.Workers = workers
	cfg.Multilevel = true
	cfg.UtilizationThreshold = 0.04
	m := &autoncs.MetricsObserver{}
	cfg.Observer = obs.Multi(ob, m)
	res, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("crossbars: %d, synapses: %d, outliers %.1f%%, %d ISC iterations\n",
		len(res.Assignment.Crossbars), len(res.Assignment.Synapses),
		100*res.Assignment.OutlierRatio(), len(res.Trace))
	cs := m.Snapshot().LastClusterStats
	fmt.Printf("engine: %d multilevel + %d flat rounds, depth %d, %d eigensolves (%d warm), %d refine moves\n",
		cs.MultilevelRounds, cs.FlatRounds, cs.MaxDepth, cs.Eigensolves, cs.WarmStarts, cs.RefineMoves)
	rec.stageTimes(res.StageTimes)
	rec.metric("crossbars", float64(len(res.Assignment.Crossbars)))
	rec.metric("synapses", float64(len(res.Assignment.Synapses)))
	rec.metric("outlier_ratio", res.Assignment.OutlierRatio())
	rec.metric("isc_iterations", float64(len(res.Trace)))
	rec.metric("multilevel_rounds", float64(cs.MultilevelRounds))
	rec.metric("flat_rounds", float64(cs.FlatRounds))
	rec.metric("eigensolves", float64(cs.Eigensolves))
	rec.metric("warm_starts", float64(cs.WarmStarts))
	rec.metric("refine_moves", float64(cs.RefineMoves))
	return nil
}

// compile10k is the new scale testbench the multilevel engine unlocks: a
// 10000-neuron cluster-only compile, far beyond what the flat spectral
// engine can touch in reasonable time. The -quick variant keeps all 10k
// neurons but thins the connectivity so CI's bench-smoke can afford it.
func compile10k(ctx context.Context, quick bool, seed int64, workers int, ob autoncs.Observer, rec *reporter) error {
	const n = 10000
	sparsity := 0.9985
	if quick {
		sparsity = 0.9995
	}
	header(fmt.Sprintf("compile10k — %d-neuron cluster-only compile (multilevel engine, sparsity %g)", n, sparsity))
	net := autoncs.RandomSparseNetwork(n, sparsity, seed)
	cfg := autoncs.DefaultConfig()
	cfg.SkipPhysical = true
	cfg.Workers = workers
	cfg.Multilevel = true
	m := &autoncs.MetricsObserver{}
	cfg.Observer = obs.Multi(ob, m)
	res, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("connections: %d, crossbars: %d, synapses: %d, outliers %.1f%%, %d ISC iterations\n",
		net.NNZ(), len(res.Assignment.Crossbars), len(res.Assignment.Synapses),
		100*res.Assignment.OutlierRatio(), len(res.Trace))
	cs := m.Snapshot().LastClusterStats
	fmt.Printf("engine: %d multilevel + %d flat rounds, depth %d, %d matchings, %d eigensolves (%d warm), %d refine moves\n",
		cs.MultilevelRounds, cs.FlatRounds, cs.MaxDepth, cs.Matchings, cs.Eigensolves, cs.WarmStarts, cs.RefineMoves)
	rec.stageTimes(res.StageTimes)
	rec.metric("connections", float64(net.NNZ()))
	rec.metric("crossbars", float64(len(res.Assignment.Crossbars)))
	rec.metric("synapses", float64(len(res.Assignment.Synapses)))
	rec.metric("outlier_ratio", res.Assignment.OutlierRatio())
	rec.metric("isc_iterations", float64(len(res.Trace)))
	rec.metric("multilevel_rounds", float64(cs.MultilevelRounds))
	rec.metric("eigensolves", float64(cs.Eigensolves))
	rec.metric("warm_starts", float64(cs.WarmStarts))
	rec.metric("refine_moves", float64(cs.RefineMoves))
	return nil
}

// clusterStage benchmarks the clustering stage in isolation: the same
// network compiled (cluster-only) through the flat spectral engine and the
// multilevel engine, with wall time, crossbar count, and outlier quality
// side by side — the explicit quality accounting of the multilevel path.
func clusterStage(ctx context.Context, quick bool, seed int64, workers int, ob autoncs.Observer, rec *reporter) error {
	n, sparsity, cutoff := 1000, 0.99, 256
	if quick {
		n, sparsity, cutoff = 400, 0.97, 128
	}
	header(fmt.Sprintf("cluster — flat vs multilevel clustering engine (%d neurons)", n))
	net := autoncs.RandomSparseNetwork(n, sparsity, seed)
	type outcome struct {
		wall      time.Duration
		crossbars int
		synapses  int
		iters     int
		outliers  float64
		stats     autoncs.MetricsSnapshot
	}
	engine := func(multilevel bool) (outcome, error) {
		cfg := autoncs.DefaultConfig()
		cfg.Seed = seed
		cfg.SkipPhysical = true
		cfg.Workers = workers
		cfg.Multilevel = multilevel
		cfg.MultilevelCutoff = cutoff
		m := &autoncs.MetricsObserver{}
		cfg.Observer = obs.Multi(ob, m)
		start := time.Now()
		res, err := autoncs.CompileCtx(ctx, net, cfg)
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			wall:      time.Since(start),
			crossbars: len(res.Assignment.Crossbars),
			synapses:  len(res.Assignment.Synapses),
			iters:     len(res.Trace),
			outliers:  res.Assignment.OutlierRatio(),
			stats:     m.Snapshot(),
		}, nil
	}
	flat, err := engine(false)
	if err != nil {
		return err
	}
	ml, err := engine(true)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "engine\twall time\tcrossbars\tsynapses\toutliers\titerations")
	fmt.Fprintf(w, "flat\t%v\t%d\t%d\t%.2f%%\t%d\n",
		flat.wall.Round(time.Millisecond), flat.crossbars, flat.synapses, 100*flat.outliers, flat.iters)
	fmt.Fprintf(w, "multilevel\t%v\t%d\t%d\t%.2f%%\t%d\n",
		ml.wall.Round(time.Millisecond), ml.crossbars, ml.synapses, 100*ml.outliers, ml.iters)
	w.Flush()
	speedup := float64(flat.wall) / float64(ml.wall)
	cs := ml.stats.LastClusterStats
	fmt.Printf("multilevel speedup: %.2fx (cutoff %d)\n", speedup, cutoff)
	fmt.Printf("engine: %d multilevel + %d flat rounds, depth %d, %d matchings, %d eigensolves (%d warm), %d refine moves\n",
		cs.MultilevelRounds, cs.FlatRounds, cs.MaxDepth, cs.Matchings, cs.Eigensolves, cs.WarmStarts, cs.RefineMoves)
	rec.metric("flat_seconds", flat.wall.Seconds())
	rec.metric("multilevel_seconds", ml.wall.Seconds())
	rec.metric("cluster_speedup", speedup)
	rec.metric("flat_crossbars", float64(flat.crossbars))
	rec.metric("multilevel_crossbars", float64(ml.crossbars))
	rec.metric("flat_outlier_ratio", flat.outliers)
	rec.metric("multilevel_outlier_ratio", ml.outliers)
	rec.metric("multilevel_eigensolves", float64(cs.Eigensolves))
	rec.metric("multilevel_warm_starts", float64(cs.WarmStarts))
	rec.metric("multilevel_refine_moves", float64(cs.RefineMoves))
	return nil
}

// fidelity verifies the implicit functional claim of Section 3 ("our
// design maintains the topology of the original NCS"): Hopfield recall
// executed through the compiled hybrid hardware retains software-level
// recognition, with and without stuck-at defects repaired into synapses.
func fidelity(quick bool, seed int64) error {
	header("Hardware-in-the-loop recognition fidelity")
	tb := hopfield.Testbench{ID: 1, M: 8, N: 160, Sparsity: 0.93}
	if quick {
		tb = hopfield.Testbench{ID: 1, M: 5, N: 80, Sparsity: 0.9}
	}
	fmt.Println("defects | crossbars | synapses | software rate | hardware rate")
	for _, rate := range []float64{0, 0.02} {
		res, err := experiments.Fidelity(tb, 0.05, rate, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %4.1f%% |   %4d    |   %4d   |     %3.0f%%      |     %3.0f%%\n",
			100*rate, res.Crossbars, res.Synapses, 100*res.SoftwareRate, 100*res.HardwareRate)
	}
	return nil
}

// reliability reproduces the paper's motivating constraint (Section 2.1,
// citing [6]): crossbar read reliability versus size under IR drop and
// process variation, which caps the library at 64×64.
func reliability(quick bool, seed int64) error {
	header("Crossbar reliability vs size (the ≤64 constraint of Section 2.1)")
	sizes := []int{16, 32, 48, 64, 80, 96}
	trials := 10
	if quick {
		sizes = []int{16, 32, 48, 64}
		trials = 4
	}
	sweep, err := experiments.Reliability(sizes, trials, 0.3, seed)
	if err != nil {
		return err
	}
	fmt.Println("size | exact-read rate | worst IR sag | mean column count error")
	for _, pt := range sweep.Points {
		fmt.Printf(" %3d |      %4.2f       |    %5.1f%%    |  %.2f\n",
			pt.Size, pt.Rate, 100*pt.WorstSag, pt.MeanColErr)
	}
	fmt.Printf("reliability knee: %d (the paper's library tops out at 64)\n", sweep.Knee())
	return nil
}

func header(s string) {
	fmt.Printf("\n================ %s ================\n", s)
}

func figure3(n, maxSize int, seed int64, rec *reporter) error {
	header("Figure 3 — Modified Spectral Clustering (MSC)")
	res, err := experiments.Figure3(n, maxSize, seed)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d neurons, %d connections\n", res.N, res.Connections)
	fmt.Printf("clusters: %d, outlier ratio after one MSC pass: %.1f%% (paper: 57%% on its example)\n",
		len(res.Clusters), 100*res.OutlierRatio)
	rec.metric("clusters", float64(len(res.Clusters)))
	rec.metric("outlier_ratio", res.OutlierRatio)
	fmt.Println("\n(a) original connection matrix:")
	fmt.Println(res.Before)
	fmt.Println("(b) clustered (neurons permuted by cluster):")
	fmt.Println(res.After)
	return nil
}

func figure4(n, maxSize int, seed int64, rec *reporter) error {
	header("Figure 4 — GCP vs traversing")
	res, err := experiments.Figure4(n, maxSize, seed)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tclusters\tmax size\twithin-cluster\ttime")
	fmt.Fprintf(w, "GCP\t%d\t%d\t%.1f%%\t%v\n",
		res.GCP.Clusters, res.GCP.MaxSize, 100*res.GCP.WithinRatio, res.GCP.Elapsed)
	fmt.Fprintf(w, "traversing\t%d\t%d\t%.1f%%\t%v\n",
		res.Traversing.Clusters, res.Traversing.MaxSize, 100*res.Traversing.WithinRatio, res.Traversing.Elapsed)
	w.Flush()
	speedup := float64(res.Traversing.Elapsed) / float64(res.GCP.Elapsed)
	fmt.Printf("GCP speedup: %.2fx (paper: 190ms vs 106ms ≈ 1.8x)\n", speedup)
	rec.metric("gcp_seconds", res.GCP.Elapsed.Seconds())
	rec.metric("traversing_seconds", res.Traversing.Elapsed.Seconds())
	rec.metric("gcp_speedup", speedup)
	return nil
}

func figure56(ctx context.Context, n int, seed int64, rec *reporter) error {
	header("Figures 5 & 6 — ISC iterations (remaining network)")
	res, err := experiments.Figure56Ctx(ctx, n, seed, true)
	if err != nil {
		return err
	}
	for _, it := range res.Iterations {
		fmt.Printf("iteration %d: placed %d clusters (kept %d low-CP), quartile CP %.2f, outliers %.1f%%\n",
			it.Index, it.Placed, it.Kept, it.QuartileCP, 100*it.OutlierRatio)
	}
	last := res.Iterations[len(res.Iterations)-1]
	fmt.Printf("\nremaining network after iteration %d (%.1f%% outliers; paper: <5%% after 11):\n%s\n",
		last.Index, 100*res.FinalOutlierRatio, last.RemainingView)
	rec.metric("iterations", float64(len(res.Iterations)))
	rec.metric("final_outlier_ratio", res.FinalOutlierRatio)
	return nil
}

func figureISC(ctx context.Context, tb hopfield.Testbench, figNo int, seed int64, rec *reporter) error {
	header(fmt.Sprintf("Figure %d — ISC efficacy, testbench %d (M=%d, N=%d)", figNo, tb.ID, tb.M, tb.N))
	a, err := experiments.FigureISCCtx(ctx, tb, seed)
	if err != nil {
		return err
	}
	fmt.Println("(a) outlier ratio per iteration:")
	for i, v := range a.OutlierRatio {
		fmt.Printf("  iter %2d: %5.1f%%  %s\n", i+1, 100*v, bar(v, 40))
	}
	fmt.Println("(b) normalized crossbar utilization (u/u_baseline) and avg CP per iteration:")
	for i := range a.NormalizedUtilization {
		fmt.Printf("  iter %2d: u/u0 %5.2f, CP %5.2f\n", i+1, a.NormalizedUtilization[i], a.AvgCP[i])
	}
	fmt.Println("(c) crossbar size distribution:")
	sizes := make([]int, 0, len(a.SizeHistogram))
	for s := range a.SizeHistogram {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts := make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = a.SizeHistogram[s]
	}
	fmt.Print(viz.Histogram(sizes, counts, 40))
	fmt.Println("(d) fanin+fanout by medium:")
	crossOnly, synOnly, both, neither := 0, 0, 0, 0
	for _, f := range a.Fans {
		switch {
		case f.Crossbar > 0 && f.Synapse > 0:
			both++
		case f.Crossbar > 0:
			crossOnly++
		case f.Synapse > 0:
			synOnly++
		default:
			neither++
		}
	}
	fmt.Printf("  neurons on crossbars only: %d, synapses only: %d, both: %d, unconnected: %d\n",
		crossOnly, synOnly, both, neither)
	fmt.Printf("  avg total fanin+fanout vs baseline: %.0f%% (paper: ≈80%%)\n", 100*a.AvgSumRatio)
	fmt.Printf("summary: %d iterations, final outliers %.1f%% \n", a.Iterations, 100*a.FinalOutliers)
	rec.metric("iterations", float64(a.Iterations))
	rec.metric("final_outlier_ratio", a.FinalOutliers)
	rec.metric("avg_fan_ratio", a.AvgSumRatio)
	return nil
}

func bar(v float64, width int) string {
	n := int(v * float64(width))
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func figure10(ctx context.Context, tb hopfield.Testbench, seed int64, rec *reporter) error {
	header("Figure 10 — placement & routing of testbench 3")
	res, err := experiments.Figure10Ctx(ctx, tb, seed)
	if err != nil {
		return err
	}
	fmt.Printf("(a) FullCro placement (area %.0f µm²):\n%s\n", res.FullCroArea, res.FullCroLayout)
	fmt.Printf("(b) FullCro congestion (peak %d wires/bin, %d capacity relaxations):\n%s\n",
		res.FullCroPeakUsage, res.FullCroRelaxations, res.FullCroCongestion)
	fmt.Printf("(c) AutoNCS placement (area %.0f µm²):\n%s\n", res.AutoNCSArea, res.AutoNCSLayout)
	fmt.Printf("(d) AutoNCS congestion (peak %d wires/bin, %d capacity relaxations):\n%s\n",
		res.AutoNCSPeakUsage, res.AutoNCSRelaxations, res.AutoNCSCongestion)
	fmt.Printf("wirelength: AutoNCS %.0f µm vs FullCro %.0f µm\n", res.AutoNCSWirelength, res.FullCroWirelength)
	rec.metric("autoncs_wirelength_um", res.AutoNCSWirelength)
	rec.metric("fullcro_wirelength_um", res.FullCroWirelength)
	rec.metric("autoncs_peak_usage", float64(res.AutoNCSPeakUsage))
	rec.metric("fullcro_peak_usage", float64(res.FullCroPeakUsage))
	return nil
}

func table1(ctx context.Context, tbs []hopfield.Testbench, seed int64, rec *reporter) error {
	header("Table 1 — physical design cost evaluation")
	res, err := experiments.Table1Ctx(ctx, tbs, seed)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "testbench\t\ttotal wirelength (µm)\tarea (µm²)\tdelay (ns)")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%d\tAutoNCS\t%.1f\t%.2f\t%.2f\n",
			row.Testbench.ID, row.AutoNCS.Wirelength, row.AutoNCS.Area, row.AutoNCS.AvgDelay)
		fmt.Fprintf(w, "\tFullCro\t%.1f\t%.2f\t%.2f\n",
			row.FullCro.Wirelength, row.FullCro.Area, row.FullCro.AvgDelay)
		fmt.Fprintf(w, "\tReduc. (%%)\t%.2f%%\t%.2f%%\t%.2f%%\n",
			row.Reductions.Wirelength, row.Reductions.Area, row.Reductions.Delay)
	}
	w.Flush()
	fmt.Printf("\naverage reductions: wirelength %.2f%%, area %.2f%%, delay %.2f%%\n",
		res.Avg.Wirelength, res.Avg.Area, res.Avg.Delay)
	fmt.Println("paper:              wirelength 47.80%, area 31.97%, delay 47.18%")
	rec.metric("avg_wirelength_reduction_pct", res.Avg.Wirelength)
	rec.metric("avg_area_reduction_pct", res.Avg.Area)
	rec.metric("avg_delay_reduction_pct", res.Avg.Delay)
	return nil
}
