package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	autoncs "repro"
)

// deltaStage measures the incremental-recompile path end to end, in the
// interactive-editing regime it exists for: a full multilevel compile of a
// paper-scale network, a localized 1% edge edit, then the edited network
// recompiled through CompileDelta against the base result. The full base
// compile is both the timing reference (without the delta path, the edit
// costs another compile of the same shape) and the quality reference (the
// documented contract is that a delta tracks the quality of its base, not
// of a hypothetical from-scratch recompile). The stage reports the
// wall-time ratio plus the reuse fractions of every pipeline layer
// (clustering, placement, routing), and fails unless the delta is ≥10x
// faster at comparable quality — the speedup claim is gated, not assumed.
func deltaStage(ctx context.Context, quick bool, seed int64, workers int, ob autoncs.Observer, rec *reporter) error {
	n, sparsity := 2000, 0.985
	if quick {
		n, sparsity = 600, 0.97
	}
	const editFrac = 0.01
	header(fmt.Sprintf("delta — incremental recompile after a localized %.0f%% edge edit (%d neurons)", 100*editFrac, n))

	net := autoncs.RandomSparseNetwork(n, sparsity, seed)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Multilevel = true
	cfg.UtilizationThreshold = 0.04
	cfg.Observer = ob

	start := time.Now()
	base, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		return err
	}
	baseWall := time.Since(start)

	edited := net.Clone()
	removed, added := localizedEdit(edited, editFrac)

	start = time.Now()
	dres, stats, err := autoncs.CompileDeltaCtx(ctx, base, edited, cfg)
	if err != nil {
		return err
	}
	deltaWall := time.Since(start)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "compile\twall time\tcrossbars\tsynapses\toutliers\twirelength (µm)")
	row := func(name string, wall time.Duration, r *autoncs.Result) {
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%.2f%%\t%.1f\n",
			name, wall.Round(time.Millisecond),
			len(r.Assignment.Crossbars), len(r.Assignment.Synapses),
			100*r.Assignment.OutlierRatio(), r.Report.Wirelength)
	}
	row("full (base)", baseWall, base)
	row("delta (edited)", deltaWall, dres)
	w.Flush()
	fmt.Printf("edit: %d removed + %d added of %d base connections (ratio %.4f), %d neurons touched\n",
		removed, added, net.NNZ(), stats.EditRatio, stats.TouchedNeurons)
	fmt.Printf("reuse: clusters %.1f%% (%d/%d crossbars kept, %d residual conns), placement %.1f%% (%d/%d cells seeded), routing %.1f%% (%d/%d wires kept)\n",
		100*stats.ClusterReuseFrac, stats.KeptCrossbars, stats.BaseCrossbars, stats.ResidualConns,
		100*stats.PlaceReuseFrac, stats.SeededCells, stats.Cells,
		100*stats.RouteReuseFrac, stats.ReusedWires, stats.Wires)
	speedup := float64(baseWall) / float64(deltaWall)
	fmt.Printf("delta speedup: %.1fx over a full recompile\n", speedup)

	rec.stageTimes(dres.StageTimes)
	rec.metric("full_seconds", baseWall.Seconds())
	rec.metric("delta_seconds", deltaWall.Seconds())
	rec.metric("delta_speedup", speedup)
	rec.metric("edits", float64(stats.Edits))
	rec.metric("edit_ratio", stats.EditRatio)
	rec.metric("touched_neurons", float64(stats.TouchedNeurons))
	rec.metric("cluster_reuse_frac", stats.ClusterReuseFrac)
	rec.metric("place_reuse_frac", stats.PlaceReuseFrac)
	rec.metric("route_reuse_frac", stats.RouteReuseFrac)
	rec.metric("kept_crossbars", float64(stats.KeptCrossbars))
	rec.metric("residual_conns", float64(stats.ResidualConns))
	rec.metric("rerouted_wires", float64(stats.ReroutedWires))
	rec.metric("base_outlier_ratio", base.Assignment.OutlierRatio())
	rec.metric("delta_outlier_ratio", dres.Assignment.OutlierRatio())
	rec.metric("base_wirelength_um", base.Report.Wirelength)
	rec.metric("delta_wirelength_um", dres.Report.Wirelength)

	// The gates: the speedup claim only counts at comparable quality.
	const (
		minSpeedup   = 10.0
		outlierSlack = 0.02 // absolute outlier-ratio headroom over the base
		costSlack    = 1.25 // wirelength headroom over the base
	)
	if speedup < minSpeedup {
		return fmt.Errorf("delta speedup %.1fx below the %.0fx gate (full %v, delta %v)",
			speedup, minSpeedup, baseWall.Round(time.Millisecond), deltaWall.Round(time.Millisecond))
	}
	if do, bo := dres.Assignment.OutlierRatio(), base.Assignment.OutlierRatio(); do > bo+outlierSlack {
		return fmt.Errorf("delta outlier ratio %.4f exceeds base %.4f + %.2f slack", do, bo, outlierSlack)
	}
	if dc, bc := len(dres.Assignment.Crossbars), len(base.Assignment.Crossbars); dc > bc+2 && float64(dc) > 1.05*float64(bc) {
		return fmt.Errorf("delta uses %d crossbars, base %d", dc, bc)
	}
	if bw := base.Report.Wirelength; bw > 0 && dres.Report.Wirelength > costSlack*bw {
		return fmt.Errorf("delta wirelength %.1f µm exceeds %.2fx the base's %.1f µm",
			dres.Report.Wirelength, costSlack, bw)
	}
	fmt.Printf("quality gates passed (speedup ≥ %.0fx, outliers within %.2f, crossbars within 5%%, wirelength within %.2fx of the base)\n",
		minSpeedup, outlierSlack, costSlack)
	return nil
}

// localizedEdit applies the editing shape the delta path is built for:
// contiguous neuron windows are rewired in place — existing connections
// removed from one window, absent ones added in a disjoint window (so the
// adds cannot cancel the removals) — together editFrac of the network's
// connections. Deterministic scan order keeps the stage reproducible.
func localizedEdit(net *autoncs.Network, editFrac float64) (removed, added int) {
	n := net.N()
	target := int(editFrac * float64(net.NNZ()))
	if target < 4 {
		target = 4
	}
	span := n / 8
	removeTarget := target / 2
	addTarget := target - removeTarget
	lo := n / 10
	for i := lo; i < lo+span && removed < removeTarget; i++ {
		for j := lo; j < lo+span && removed < removeTarget; j++ {
			if i != j && net.Has(i, j) {
				net.Clear(i, j)
				removed++
			}
		}
	}
	lo = n / 2
	for i := lo; i < lo+span && added < addTarget; i++ {
		for j := lo; j < lo+span && added < addTarget; j++ {
			if i != j && !net.Has(i, j) {
				net.Set(i, j)
				added++
			}
		}
	}
	return removed, added
}
