package main

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestReportAttribution: every bench report records the runtime facts a
// later reader needs to compare runs — Go version, scheduler parallelism,
// and (when the binary was built from a checkout) the source commit.
func TestReportAttribution(t *testing.T) {
	r := newReporter(7, 4, true, false)
	rep := r.rep
	if rep.GoVersion != runtime.Version() {
		t.Errorf("go_version %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) || rep.GOMAXPROCS <= 0 {
		t.Errorf("gomaxprocs %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if rep.NumCPU != runtime.NumCPU() {
		t.Errorf("num_cpu %d, want %d", rep.NumCPU, runtime.NumCPU())
	}

	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"go_version", "gomaxprocs", "num_cpu", "seed", "workers"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
	// Test binaries carry no vcs stamp; the fields must then be absent
	// rather than empty noise.
	if commit, _ := vcsStamp(); commit == "" {
		if _, ok := decoded["git_commit"]; ok {
			t.Error("empty git_commit serialized")
		}
	} else if decoded["git_commit"] != commit {
		t.Errorf("git_commit %v, want %q", decoded["git_commit"], commit)
	}
}
