// Command ncsdiag prints stage-by-stage placement quality diagnostics for
// the AutoNCS and FullCro designs of a testbench: initial-grid HPWL,
// post-optimization HPWL, routed wirelength, congestion, and per-design
// netlist statistics. It exists to tune the physical-design parameters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/hopfield"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

func main() {
	var (
		tbID    = flag.Int("testbench", 1, "paper testbench id (1-3)")
		seed    = flag.Int64("seed", 1, "random seed")
		cgIters = flag.Int("cg", 120, "CG iterations per lambda round")
		outer   = flag.Int("outer", 10, "max lambda rounds")
		omega   = flag.Float64("omega", 1.6, "virtual width factor")
		gamma   = flag.Float64("gamma", 2.0, "WA smoothing")
		trace   = flag.Bool("trace", false, "log every clustering/placement/routing event to stderr")
	)
	flag.Parse()
	tb := hopfield.Testbenches()[*tbID-1]
	cm, _, _ := tb.Build(*seed)
	fmt.Printf("testbench %d: %d neurons, %d connections\n", tb.ID, cm.N(), cm.NNZ())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var observer obs.Observer
	if *trace {
		h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
		observer = obs.NewSlog(slog.New(h))
	}

	lib := xbar.DefaultLibrary()
	dev := xbar.Default45nm()
	full := xbar.FullCro(cm, lib)
	iscRes, err := core.ISCCtx(ctx, cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: full.AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(*seed)),
		Observer:             observer,
	})
	check(err)

	opts := place.DefaultOptions()
	opts.CGIterations = *cgIters
	opts.MaxOuter = *outer
	opts.Omega = *omega
	opts.Gamma = *gamma
	opts.Observer = observer

	routeOpts := route.DefaultOptions()
	routeOpts.Observer = observer

	for _, d := range []struct {
		name string
		a    *xbar.Assignment
	}{{"AutoNCS", iscRes.Assignment}, {"FullCro", full}} {
		nl, err := netlist.Build(d.a, dev)
		check(err)
		wiresPerNeuron := float64(len(nl.Wires)) / float64(len(nl.NeuronCell))
		fmt.Printf("\n== %s: %d cells, %d wires (%.1f per neuron)\n",
			d.name, len(nl.Cells), len(nl.Wires), wiresPerNeuron)
		pl, err := place.PlaceCtx(ctx, nl, opts)
		check(err)
		fmt.Printf("  placement: HPWL initial %.0f → global %.0f → legalized %.0f; area %.0f µm² (%.0f×%.0f), outer rounds %d\n",
			pl.InitialHPWL, pl.GlobalHPWL, pl.HPWL, pl.Area(), pl.Width(), pl.Height(), pl.Outer)
		unweighted := 0.0
		for _, w := range nl.Wires {
			unweighted += abs(pl.X[w.From]-pl.X[w.To]) + abs(pl.Y[w.From]-pl.Y[w.To])
		}
		fmt.Printf("  unweighted HPWL %.0f (avg %.1f µm/wire)\n", unweighted, unweighted/float64(len(nl.Wires)))
		rt, err := route.RouteCtx(ctx, nl, pl, routeOpts)
		check(err)
		fmt.Printf("  routed: total %.0f µm (avg %.1f), relaxations %d, peak bin usage %d\n",
			rt.Total, rt.Total/float64(len(nl.Wires)), rt.Relaxations, rt.MaxUsage())
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		os.Exit(1)
	}
}
