// Command ncsfig renders the paper's figures as PNG images: the Figure 3
// connection matrices (before/after clustering) and the Figure 10 placement
// and congestion maps of a testbench under FullCro and AutoNCS.
//
//	ncsfig -out figures          # testbench 3 at paper scale (minutes)
//	ncsfig -out figures -quick   # scaled down (seconds)
package main

import (
	"flag"
	"fmt"
	"image"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/hopfield"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/viz"
	"repro/internal/xbar"
)

func main() {
	var (
		out   = flag.String("out", "figures", "output directory")
		quick = flag.Bool("quick", false, "scaled-down run")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	tb := hopfield.Testbenches()[2]
	n := 400
	if *quick {
		tb = hopfield.Testbench{ID: 3, M: 8, N: 160, Sparsity: 0.93}
		n = 160
	}

	// Figure 3: connection matrix before/after one clustering pass.
	cm3 := hopfield.Testbench{M: n / 16, N: n, Sparsity: 0.94}
	net3, _, _ := cm3.Build(*seed)
	clusters, err := core.GCP(net3, 64, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}
	perm := core.PermutationByClusters(n, clusters)
	write(*out, "fig3a_original.png", viz.MatrixPNG(net3, nil, 400))
	write(*out, "fig3b_clustered.png", viz.MatrixPNG(net3, perm, 400))

	// Figure 10: placement and congestion, FullCro vs AutoNCS.
	cm, _, _ := tb.Build(*seed)
	lib := xbar.DefaultLibrary()
	dev := xbar.Default45nm()
	full := xbar.FullCro(cm, lib)
	iscRes, err := core.ISC(cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: full.AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		fatal(err)
	}
	for _, d := range []struct {
		name string
		a    *xbar.Assignment
	}{{"fullcro", full}, {"autoncs", iscRes.Assignment}} {
		nl, err := netlist.Build(d.a, dev)
		if err != nil {
			fatal(err)
		}
		pl, err := place.Place(nl, place.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		rt, err := route.Route(nl, pl, route.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		write(*out, "fig10_"+d.name+"_layout.png", viz.LayoutPNG(nl, pl, 4))
		write(*out, "fig10_"+d.name+"_congestion.png", viz.CongestionPNG(rt))
		fmt.Printf("%s: area %.0f µm², wirelength %.0f µm, peak congestion %d\n",
			d.name, pl.Area(), rt.Total, rt.MaxUsage())
	}
	fmt.Println("figures written to", *out)
}

func write(dir, name string, img image.Image) {
	path := filepath.Join(dir, name)
	if err := viz.WritePNG(path, img); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncsfig:", err)
	os.Exit(1)
}
