// Command autoncs runs the AutoNCS flow on a network and prints the
// resulting implementation and physical-design report, optionally alongside
// the FullCro baseline.
//
// Usage:
//
//	autoncs -testbench 3            # one of the paper's Hopfield benches
//	autoncs -n 400 -sparsity 0.94   # a random sparse network
//	autoncs -testbench 2 -baseline  # also run and compare against FullCro
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/parallel"
)

func main() {
	var (
		tbID     = flag.Int("testbench", 0, "paper testbench id (1-3); 0 uses -n/-sparsity")
		n        = flag.Int("n", 400, "neurons in the random network")
		sparsity = flag.Float64("sparsity", 0.94, "sparsity of the random network")
		seed     = flag.Int64("seed", 1, "random seed")
		baseline = flag.Bool("baseline", false, "also run the FullCro baseline and compare")
		skipPhys = flag.Bool("cluster-only", false, "stop after clustering (no physical design)")
		quantile = flag.Float64("quantile", 0, "ISC partial-selection quantile (0 = paper's 0.75)")
		loadPath = flag.String("load", "", "load the network from a file (autoncs-net format)")
		savePath = flag.String("save", "", "save the generated network to a file before compiling")
		dumpPath = flag.String("dump", "", "write the resulting hybrid assignment as JSON")
		workers  = flag.Int("workers", 0, "worker pool size for the parallel kernels (0 = NumCPU; results are identical for any value)")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d (want ≥ 0)\n", *workers)
		os.Exit(2)
	}
	parallel.SetDefault(*workers)

	var net *autoncs.Network
	switch {
	case *loadPath != "":
		var err error
		net, err = autoncs.LoadNetwork(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("Loaded network from %s\n", *loadPath)
	case *tbID >= 1 && *tbID <= 3:
		tb := autoncs.Testbenches()[*tbID-1]
		fmt.Printf("Testbench %d: M=%d patterns, N=%d neurons, target sparsity %.2f%%\n",
			tb.ID, tb.M, tb.N, 100*tb.Sparsity)
		net = autoncs.BuildTestbench(tb, *seed)
	case *tbID == 0:
		fmt.Printf("Random network: N=%d, sparsity %.2f%%\n", *n, 100**sparsity)
		net = autoncs.RandomSparseNetwork(*n, *sparsity, *seed)
	default:
		fmt.Fprintf(os.Stderr, "invalid -testbench %d (want 0-3)\n", *tbID)
		os.Exit(2)
	}
	fmt.Printf("Network: %d neurons, %d connections, sparsity %.2f%%\n\n",
		net.N(), net.NNZ(), 100*net.Sparsity())
	if *savePath != "" {
		if err := net.Save(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("Saved network to %s\n\n", *savePath)
	}

	cfg := autoncs.DefaultConfig()
	cfg.Seed = *seed
	cfg.SkipPhysical = *skipPhys
	cfg.SelectionQuantile = *quantile
	cfg.Workers = *workers

	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoncs:", err)
		os.Exit(1)
	}
	printResult("AutoNCS", res)
	if *dumpPath != "" {
		if err := res.Assignment.SaveJSON(*dumpPath); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Printf("Assignment written to %s\n\n", *dumpPath)
	}

	if *baseline {
		full, err := autoncs.CompileFullCro(net, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fullcro:", err)
			os.Exit(1)
		}
		printResult("FullCro", full)
		if !*skipPhys {
			cmp, err := autoncs.Compare(res, full)
			if err != nil {
				fmt.Fprintln(os.Stderr, "compare:", err)
				os.Exit(1)
			}
			fmt.Printf("Reductions vs FullCro: wirelength %.2f%%, area %.2f%%, delay %.2f%%, cost %.2f%%\n",
				cmp.WirelengthReduction, cmp.AreaReduction, cmp.DelayReduction, cmp.CostReduction)
		}
	}
}

func printResult(name string, res *autoncs.Result) {
	a := res.Assignment
	fmt.Printf("== %s ==\n", name)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "crossbars\t%d\n", len(a.Crossbars))
	fmt.Fprintf(w, "discrete synapses\t%d\n", len(a.Synapses))
	fmt.Fprintf(w, "outlier ratio\t%.2f%%\n", 100*a.OutlierRatio())
	fmt.Fprintf(w, "avg crossbar utilization\t%.4f\n", a.AvgUtilization())
	fmt.Fprintf(w, "avg crossbar preference\t%.2f\n", a.AvgPreference())
	if len(res.Trace) > 0 {
		fmt.Fprintf(w, "ISC iterations\t%d\n", len(res.Trace))
	}
	if res.Report != nil {
		fmt.Fprintf(w, "total wirelength\t%.1f µm\n", res.Report.Wirelength)
		fmt.Fprintf(w, "placement area\t%.2f µm²\n", res.Report.Area)
		fmt.Fprintf(w, "avg wire delay\t%.3f ns\n", res.Report.AvgDelay)
		fmt.Fprintf(w, "cost (αL+βA+δT)\t%.1f\n", res.Report.Cost)
	}
	w.Flush()
	if h := a.SizeHistogram(); len(h) > 0 {
		fmt.Print("crossbar sizes: ")
		for _, s := range sizesOf(h) {
			fmt.Printf("%d×%d:%d  ", s, s, h[s])
		}
		fmt.Println()
	}
	fmt.Println()
}

func sizesOf(h map[int]int) []int {
	out := make([]int, 0, len(h))
	for s := range h {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
