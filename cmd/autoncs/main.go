// Command autoncs runs the AutoNCS flow on a network and prints the
// resulting implementation and physical-design report, optionally alongside
// the FullCro baseline.
//
// Usage:
//
//	autoncs -testbench 3            # one of the paper's Hopfield benches
//	autoncs -n 400 -sparsity 0.94   # a random sparse network
//	autoncs -testbench 2 -baseline  # also run and compare against FullCro
//
// With -server URL the compile runs on an autoncsd instance instead of in
// process: the network is built (or loaded) locally, shipped as text, and
// the daemon's content-addressed cache answers repeated compiles instantly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"text/tabwriter"
	"time"

	"repro"
	"repro/client"
	"repro/internal/parallel"
)

func main() {
	var (
		tbID     = flag.Int("testbench", 0, "paper testbench id (1-3); 0 uses -n/-sparsity")
		n        = flag.Int("n", 400, "neurons in the random network")
		sparsity = flag.Float64("sparsity", 0.94, "sparsity of the random network")
		seed     = flag.Int64("seed", 1, "random seed")
		baseline = flag.Bool("baseline", false, "also run the FullCro baseline and compare")
		skipPhys = flag.Bool("cluster-only", false, "stop after clustering (no physical design)")
		quantile = flag.Float64("quantile", 0, "ISC partial-selection quantile (0 = paper's 0.75)")
		multilvl = flag.Bool("multilevel", false, "cluster large iterations with the multilevel engine (see docs/clustering.md)")
		mlCutoff = flag.Int("ml-cutoff", 0, "with -multilevel: active-neuron count at or below which iterations use the flat engine (0 = default 1024)")
		legacyRt = flag.Bool("legacy-router", false, "route with the capacity-relaxation engine instead of negotiated congestion (see docs/routing.md)")
		loadPath = flag.String("load", "", "load the network from a file (autoncs-net format)")
		savePath = flag.String("save", "", "save the generated network to a file before compiling")
		dumpPath = flag.String("dump", "", "write the resulting hybrid assignment as JSON")
		workers  = flag.Int("workers", 0, "worker pool size for the parallel kernels (0 = NumCPU; results are identical for any value)")
		server   = flag.String("server", "", "compile on this autoncsd instance (e.g. http://127.0.0.1:8080) instead of in process")
		priority = flag.String("priority", "", "with -server: job priority, interactive or batch (empty = server default)")
		baseKey  = flag.String("base", "", "with -server: recompile incrementally against this previous result key (the cache key a prior run printed)")
		verbose  = flag.Bool("v", false, "log stage boundaries and ISC iterations to stderr")
		trace    = flag.Bool("trace", false, "log every flow event to stderr, including per-checkpoint placement progress and route batches (implies -v)")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d (want ≥ 0)\n", *workers)
		os.Exit(2)
	}
	parallel.SetDefault(*workers)

	// Ctrl-C cancels the flow cooperatively: the compile returns a wrapped
	// context error from whichever stage it was in.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var net *autoncs.Network
	switch {
	case *loadPath != "":
		var err error
		net, err = autoncs.LoadNetwork(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		fmt.Printf("Loaded network from %s\n", *loadPath)
	case *tbID >= 1 && *tbID <= 3:
		tb := autoncs.Testbenches()[*tbID-1]
		fmt.Printf("Testbench %d: M=%d patterns, N=%d neurons, target sparsity %.2f%%\n",
			tb.ID, tb.M, tb.N, 100*tb.Sparsity)
		net = autoncs.BuildTestbench(tb, *seed)
	case *tbID == 0:
		fmt.Printf("Random network: N=%d, sparsity %.2f%%\n", *n, 100**sparsity)
		net = autoncs.RandomSparseNetwork(*n, *sparsity, *seed)
	default:
		fmt.Fprintf(os.Stderr, "invalid -testbench %d (want 0-3)\n", *tbID)
		os.Exit(2)
	}
	fmt.Printf("Network: %d neurons, %d connections, sparsity %.2f%%\n\n",
		net.N(), net.NNZ(), 100*net.Sparsity())
	if *savePath != "" {
		if err := net.Save(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("Saved network to %s\n\n", *savePath)
	}

	if *server != "" {
		if *baseKey != "" && *baseline {
			fmt.Fprintln(os.Stderr, "-base cannot combine with -baseline (the FullCro flow has no incremental form)")
			os.Exit(2)
		}
		req := client.CompileRequest{
			Seed:              *seed,
			SelectionQuantile: *quantile,
			SkipPhysical:      *skipPhys,
			Multilevel:        *multilvl,
			MultilevelCutoff:  *mlCutoff,
			LegacyRouter:      *legacyRt,
			Priority:          *priority,
			Base:              *baseKey,
		}
		runRemote(ctx, *server, net, req, *baseline, *dumpPath)
		return
	}
	if *baseKey != "" {
		fmt.Fprintln(os.Stderr, "-base requires -server (incremental recompiles are served from the daemon's artifact cache)")
		os.Exit(2)
	}

	cfg := autoncs.DefaultConfig()
	cfg.Seed = *seed
	cfg.SkipPhysical = *skipPhys
	cfg.SelectionQuantile = *quantile
	cfg.Multilevel = *multilvl
	cfg.MultilevelCutoff = *mlCutoff
	cfg.Route.Negotiate = !*legacyRt
	cfg.Workers = *workers
	cfg.Observer = stderrObserver(*verbose, *trace)

	res, err := autoncs.CompileCtx(ctx, net, cfg)
	if err != nil {
		exitErr("autoncs", err)
	}
	printResult("AutoNCS", res, *verbose || *trace)
	if *dumpPath != "" {
		if err := res.Assignment.SaveJSON(*dumpPath); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Printf("Assignment written to %s\n\n", *dumpPath)
	}

	if *baseline {
		full, err := autoncs.CompileFullCroCtx(ctx, net, cfg)
		if err != nil {
			exitErr("fullcro", err)
		}
		printResult("FullCro", full, *verbose || *trace)
		if !*skipPhys {
			cmp, err := autoncs.Compare(res, full)
			if err != nil {
				fmt.Fprintln(os.Stderr, "compare:", err)
				os.Exit(1)
			}
			fmt.Printf("Reductions vs FullCro: wirelength %.2f%%, area %.2f%%, delay %.2f%%, cost %.2f%%\n",
				cmp.WirelengthReduction, cmp.AreaReduction, cmp.DelayReduction, cmp.CostReduction)
		}
	}
}

// stderrObserver maps the -v/-trace flags to a slog observer on stderr:
// -v shows stage boundaries, ISC iterations, and relaxations (Info); -trace
// additionally shows placement checkpoints and route batches (Debug).
func stderrObserver(verbose, trace bool) autoncs.Observer {
	if !verbose && !trace {
		return nil
	}
	level := slog.LevelInfo
	if trace {
		level = slog.LevelDebug
	}
	h := slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	return autoncs.NewSlogObserver(slog.New(h))
}

// exitErr prints err and exits — with the conventional 130 after Ctrl-C.
func exitErr(prefix string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	os.Exit(1)
}

// printResult writes the deterministic result summary to stdout; the
// per-stage wall times (non-deterministic) are included only when the user
// asked for diagnostics, so default output stays byte-comparable across
// runs and worker counts.
func printResult(name string, res *autoncs.Result, showTimes bool) {
	a := res.Assignment
	fmt.Printf("== %s ==\n", name)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "crossbars\t%d\n", len(a.Crossbars))
	fmt.Fprintf(w, "discrete synapses\t%d\n", len(a.Synapses))
	fmt.Fprintf(w, "outlier ratio\t%.2f%%\n", 100*a.OutlierRatio())
	fmt.Fprintf(w, "avg crossbar utilization\t%.4f\n", a.AvgUtilization())
	fmt.Fprintf(w, "avg crossbar preference\t%.2f\n", a.AvgPreference())
	if len(res.Trace) > 0 {
		fmt.Fprintf(w, "ISC iterations\t%d\n", len(res.Trace))
	}
	if res.Report != nil {
		fmt.Fprintf(w, "total wirelength\t%.1f µm\n", res.Report.Wirelength)
		fmt.Fprintf(w, "placement area\t%.2f µm²\n", res.Report.Area)
		fmt.Fprintf(w, "avg wire delay\t%.3f ns\n", res.Report.AvgDelay)
		fmt.Fprintf(w, "cost (αL+βA+δT)\t%.1f\n", res.Report.Cost)
	}
	if showTimes {
		for _, s := range autoncs.Stages() {
			if d, ok := res.StageTimes[s]; ok {
				fmt.Fprintf(w, "%s time\t%v\n", s, d.Round(time.Microsecond))
			}
		}
	}
	w.Flush()
	if h := a.SizeHistogram(); len(h) > 0 {
		fmt.Print("crossbar sizes: ")
		for _, s := range sizesOf(h) {
			fmt.Printf("%d×%d:%d  ", s, s, h[s])
		}
		fmt.Println()
	}
	fmt.Println()
}

// runRemote ships the locally built network to an autoncsd instance and
// renders the returned result in the same shape as the local summary. req
// carries the caller's flow knobs (multilevel, router selection, …); the
// daemon caches by content address, so rerunning the same command answers
// from the cache (reported in the summary).
func runRemote(ctx context.Context, url string, net *autoncs.Network, req client.CompileRequest, baseline bool, dumpPath string) {
	var buf bytes.Buffer
	if err := net.Write(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "remote: encoding network:", err)
		os.Exit(1)
	}
	req.Net = buf.String()
	c := client.New(url)

	auto := remoteCompile(ctx, c, req, "AutoNCS")
	if dumpPath != "" {
		if err := os.WriteFile(dumpPath, auto.Assignment, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Printf("Assignment written to %s\n\n", dumpPath)
	}
	if !baseline {
		return
	}
	req.FullCro = true
	full := remoteCompile(ctx, c, req, "FullCro")
	if auto.Report != nil && full.Report != nil {
		red := func(a, f float64) float64 {
			if f == 0 {
				return 0
			}
			return 100 * (f - a) / f
		}
		fmt.Printf("Reductions vs FullCro: wirelength %.2f%%, area %.2f%%, delay %.2f%%, cost %.2f%%\n",
			red(auto.Report.Wirelength, full.Report.Wirelength),
			red(auto.Report.Area, full.Report.Area),
			red(auto.Report.AvgDelay, full.Report.AvgDelay),
			red(auto.Report.Cost, full.Report.Cost))
	}
}

// remoteCompile submits one request, waits for it, and prints the summary;
// any failure exits.
func remoteCompile(ctx context.Context, c *client.Client, req client.CompileRequest, name string) *client.Result {
	st, err := c.CompileWait(ctx, req)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.IsRetryable() {
			fmt.Fprintf(os.Stderr, "remote: %v (retry in %v)\n", err, apiErr.RetryAfter)
			os.Exit(1)
		}
		exitErr("remote", err)
	}
	if st.State != client.StateDone {
		fmt.Fprintf(os.Stderr, "remote: job %s ended %s: %s\n", st.ID, st.State, st.Error)
		os.Exit(1)
	}
	var res client.Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		fmt.Fprintln(os.Stderr, "remote: decoding result:", err)
		os.Exit(1)
	}
	printRemoteResult(name, st, &res)
	return &res
}

// printRemoteResult mirrors printResult for the wire representation, plus
// the serving-side facts (cache hit, key, server elapsed time).
func printRemoteResult(name string, st *client.JobStatus, res *client.Result) {
	fmt.Printf("== %s (remote) ==\n", name)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	switch {
	case st.Cached:
		fmt.Fprintf(w, "served from cache\tyes\n")
	case st.Coalesced:
		fmt.Fprintf(w, "coalesced onto in-flight compile\tyes\n")
	default:
		fmt.Fprintf(w, "server compile time\t%.2fs\n", st.ElapsedSeconds)
	}
	fmt.Fprintf(w, "cache key\t%s\n", st.Key)
	if st.BaseKey != "" {
		fmt.Fprintf(w, "delta base\t%s\n", st.BaseKey)
	}
	fmt.Fprintf(w, "crossbars\t%d\n", res.Crossbars)
	fmt.Fprintf(w, "discrete synapses\t%d\n", res.Synapses)
	fmt.Fprintf(w, "outlier ratio\t%.2f%%\n", 100*res.OutlierRatio)
	fmt.Fprintf(w, "avg crossbar utilization\t%.4f\n", res.AvgUtilization)
	fmt.Fprintf(w, "avg crossbar preference\t%.2f\n", res.AvgPreference)
	if res.ISCIterations > 0 {
		fmt.Fprintf(w, "ISC iterations\t%d\n", res.ISCIterations)
	}
	if res.Report != nil {
		fmt.Fprintf(w, "total wirelength\t%.1f µm\n", res.Report.Wirelength)
		fmt.Fprintf(w, "placement area\t%.2f µm²\n", res.Report.Area)
		fmt.Fprintf(w, "avg wire delay\t%.3f ns\n", res.Report.AvgDelay)
		fmt.Fprintf(w, "cost (αL+βA+δT)\t%.1f\n", res.Report.Cost)
	}
	w.Flush()
	if len(res.SizeHistogram) > 0 {
		keys := make([]string, 0, len(res.SizeHistogram))
		for k := range res.SizeHistogram {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return len(keys[i]) < len(keys[j]) || (len(keys[i]) == len(keys[j]) && keys[i] < keys[j])
		})
		fmt.Print("crossbar sizes: ")
		for _, k := range keys {
			fmt.Printf("%s×%s:%d  ", k, k, res.SizeHistogram[k])
		}
		fmt.Println()
	}
	fmt.Println()
}

func sizesOf(h map[int]int) []int {
	out := make([]int, 0, len(h))
	for s := range h {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
