package autoncs

import (
	"testing"
)

// smallNet is a quick 120-neuron, ~92%-sparse network for facade tests.
func smallNet() *Network {
	return RandomSparseNetwork(120, 0.92, 3)
}

func TestCompileEndToEnd(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(net); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if res.Report == nil || res.Placement == nil || res.Routing == nil || res.Netlist == nil {
		t.Fatal("physical design artifacts missing")
	}
	if res.Report.Wirelength <= 0 || res.Report.Area <= 0 || res.Report.AvgDelay <= 0 {
		t.Fatalf("degenerate report: %+v", res.Report)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no ISC trace")
	}
}

func TestCompileSkipPhysical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipPhysical = true
	res, err := Compile(smallNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist != nil || res.Report != nil {
		t.Fatal("SkipPhysical still ran physical design")
	}
	if res.Assignment == nil {
		t.Fatal("no assignment")
	}
}

func TestCompileNilNetwork(t *testing.T) {
	if _, err := Compile(nil, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := CompileFullCro(nil, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted by FullCro")
	}
}

func TestFullCroBaseline(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	res, err := CompileFullCro(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(net); err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment.Synapses) != 0 {
		t.Fatal("FullCro produced synapses")
	}
	for _, cb := range res.Assignment.Crossbars {
		if cb.Size != cfg.Library.Max() {
			t.Fatalf("FullCro crossbar size %d", cb.Size)
		}
	}
}

func TestCompareAutoNCSBeatsBaseline(t *testing.T) {
	// The headline claim on a small instance: AutoNCS reduces wirelength
	// and delay versus FullCro. (Area can be close at this scale.)
	net := RandomSparseNetwork(160, 0.94, 7)
	cfg := DefaultConfig()
	auto, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CompileFullCro(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(auto, full)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DelayReduction <= 0 {
		t.Errorf("delay reduction %.1f%%, want positive", cmp.DelayReduction)
	}
	if cmp.WirelengthReduction <= 0 {
		t.Errorf("wirelength reduction %.1f%%, want positive", cmp.WirelengthReduction)
	}
}

func TestCompareRequiresReports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipPhysical = true
	res, err := Compile(smallNet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(res, res); err == nil {
		t.Fatal("Compare accepted results without reports")
	}
}

func TestBuildTestbenchDeterministic(t *testing.T) {
	tb := Testbenches()[0]
	tb.M, tb.N = 5, 80 // scaled down for test speed
	a := BuildTestbench(tb, 5)
	b := BuildTestbench(tb, 5)
	if !a.Equal(b) {
		t.Fatal("testbench not deterministic")
	}
	if a.N() != 80 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestRedesignAfterNetlistEdit(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	origWL := res.Report.Wirelength
	for i := range res.Netlist.Wires {
		res.Netlist.Wires[i].Weight = 1
	}
	if err := res.Redesign(cfg); err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Wirelength <= 0 {
		t.Fatal("redesign produced no report")
	}
	_ = origWL // weights changed; absolute WL may move either way
	// Redesign without a netlist must fail.
	empty := &Result{}
	if err := empty.Redesign(cfg); err == nil {
		t.Fatal("Redesign without netlist accepted")
	}
}

func TestCompileDeterministic(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	a, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Wirelength != b.Report.Wirelength || a.Report.Area != b.Report.Area {
		t.Fatalf("non-deterministic compile: %+v vs %+v", a.Report, b.Report)
	}
}
