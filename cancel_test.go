package autoncs_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// cancelOn is an observer that cancels its context the moment it sees an
// event for which trigger returns true — a deterministic way to cancel
// mid-stage, since events are delivered from the flow's control goroutine.
type cancelOn struct {
	cancel  context.CancelFunc
	trigger func(obs.Event) bool
	fired   bool
}

func (c *cancelOn) Observe(e obs.Event) {
	if !c.fired && c.trigger(e) {
		c.fired = true
		c.cancel()
	}
}

// compileCancelledAt runs a physical compile whose context is cancelled on
// the first event matching trigger, and returns the compile error.
func compileCancelledAt(t *testing.T, trigger func(obs.Event) bool) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ob := &cancelOn{cancel: cancel, trigger: trigger}
	net := autoncs.RandomSparseNetwork(160, 0.93, 9)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = 9
	cfg.Observer = ob
	res, err := autoncs.CompileCtx(ctx, net, cfg)
	if !ob.fired {
		t.Fatal("trigger event never observed; cannot test cancellation")
	}
	if err == nil {
		t.Fatalf("cancelled compile succeeded: %+v", res.Report)
	}
	return err
}

// checkGoroutines fails the test if the goroutine count has not settled back
// to the baseline — a cancelled compile must not leak pool workers.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after cancellation: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestCancelMidISC(t *testing.T) {
	baseline := runtime.NumGoroutine()
	err := compileCancelledAt(t, func(e obs.Event) bool {
		_, ok := e.(obs.ISCIteration)
		return ok
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "clustering") {
		t.Errorf("error %q does not name the clustering stage", err)
	}
	checkGoroutines(t, baseline)
}

func TestCancelMidPlace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	err := compileCancelledAt(t, func(e obs.Event) bool {
		_, ok := e.(obs.PlaceProgress)
		return ok
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "placement") {
		t.Errorf("error %q does not name the placement stage", err)
	}
	checkGoroutines(t, baseline)
}

func TestCancelMidRoute(t *testing.T) {
	baseline := runtime.NumGoroutine()
	err := compileCancelledAt(t, func(e obs.Event) bool {
		_, ok := e.(obs.RouteBatch)
		return ok
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "routing") {
		t.Errorf("error %q does not name the routing stage", err)
	}
	checkGoroutines(t, baseline)
}

// TestCancelBeforeStart: an already-cancelled context fails fast, before any
// stage runs.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := autoncs.RandomSparseNetwork(120, 0.92, 3)
	m := &autoncs.MetricsObserver{}
	cfg := autoncs.DefaultConfig()
	cfg.Observer = m
	if _, err := autoncs.CompileCtx(ctx, net, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled compile returned %v", err)
	}
	snap := m.Snapshot()
	if snap.PlaceSteps != 0 || snap.RouteBatches != 0 {
		t.Fatalf("pre-cancelled compile still placed/routed: %+v", snap)
	}
}

// recordingObserver captures the full event stream in order. Events arrive
// sequentially on the control goroutine, so no locking is needed.
type recordingObserver struct{ events []obs.Event }

func (r *recordingObserver) Observe(e obs.Event) { r.events = append(r.events, e) }

// typeSequence renders the event stream as one comparable string of event
// kinds (stage boundaries keep their stage name).
func typeSequence(events []obs.Event) string {
	var b strings.Builder
	for _, e := range events {
		switch e := e.(type) {
		case obs.CompileStart:
			b.WriteString("compile-start;")
		case obs.CompileEnd:
			b.WriteString("compile-end;")
		case obs.StageStart:
			b.WriteString("start:" + string(e.Stage) + ";")
		case obs.StageEnd:
			b.WriteString("end:" + string(e.Stage) + ";")
		case obs.ISCIteration:
			b.WriteString("isc;")
		case obs.PlaceProgress:
			b.WriteString("place;")
		case obs.RouteBatch:
			b.WriteString("batch;")
		case obs.RouteRelaxation:
			b.WriteString("relax;")
		case obs.RouteStats:
			b.WriteString("route-stats;")
		default:
			b.WriteString("unknown;")
		}
	}
	return b.String()
}

// TestObserverEventSequence pins the order and nesting of the event stream:
// CompileStart first, CompileEnd last, the five stages in pipeline order
// with properly paired boundaries, per-iteration events inside their stage,
// and an event sequence that is identical across worker counts.
func TestObserverEventSequence(t *testing.T) {
	net := autoncs.RandomSparseNetwork(140, 0.93, 11)
	run := func(workers int) (*recordingObserver, *autoncs.Result) {
		rec := &recordingObserver{}
		cfg := autoncs.DefaultConfig()
		cfg.Seed = 11
		cfg.Workers = workers
		cfg.Observer = rec
		res, err := autoncs.Compile(net, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rec, res
	}
	rec, res := run(1)
	ev := rec.events
	if len(ev) < 12 { // 2 compile + 10 stage boundaries at minimum
		t.Fatalf("only %d events", len(ev))
	}
	if _, ok := ev[0].(obs.CompileStart); !ok {
		t.Errorf("first event %T, want CompileStart", ev[0])
	}
	end, ok := ev[len(ev)-1].(obs.CompileEnd)
	if !ok {
		t.Fatalf("last event %T, want CompileEnd", ev[len(ev)-1])
	}
	if end.Err != nil || end.Elapsed <= 0 {
		t.Errorf("CompileEnd{Elapsed: %v, Err: %v} on a successful compile", end.Elapsed, end.Err)
	}

	// Stage boundaries appear exactly once each, in pipeline order, and
	// every per-iteration event falls inside its own stage's window.
	open := ""
	var started []autoncs.Stage
	for i, e := range ev {
		switch e := e.(type) {
		case obs.StageStart:
			if open != "" {
				t.Fatalf("event %d: stage %s started inside %s", i, e.Stage, open)
			}
			open = string(e.Stage)
			started = append(started, e.Stage)
		case obs.StageEnd:
			if open != string(e.Stage) {
				t.Fatalf("event %d: stage %s ended while %q open", i, e.Stage, open)
			}
			open = ""
		case obs.ISCIteration:
			if open != string(autoncs.StageClustering) {
				t.Fatalf("event %d: ISCIteration outside clustering (in %q)", i, open)
			}
		case obs.PlaceProgress:
			if open != string(autoncs.StagePlace) {
				t.Fatalf("event %d: PlaceProgress outside place (in %q)", i, open)
			}
		case obs.RouteBatch, obs.RouteRelaxation, obs.RouteStats:
			if open != string(autoncs.StageRoute) {
				t.Fatalf("event %d: %T outside route (in %q)", i, e, open)
			}
		}
	}
	wantStages := autoncs.Stages()
	if len(started) != len(wantStages) {
		t.Fatalf("stages started %v, want %v", started, wantStages)
	}
	for i, s := range wantStages {
		if started[i] != s {
			t.Fatalf("stage %d = %s, want %s", i, started[i], s)
		}
	}

	// ISC iteration events mirror the recorded trace one-to-one.
	iscEvents := 0
	for _, e := range ev {
		if it, ok := e.(obs.ISCIteration); ok {
			iscEvents++
			if it.Index != iscEvents {
				t.Errorf("ISCIteration index %d at position %d", it.Index, iscEvents)
			}
		}
	}
	if iscEvents != len(res.Trace) {
		t.Errorf("%d ISCIteration events, trace has %d", iscEvents, len(res.Trace))
	}

	// StageTimes carries every executed stage.
	for _, s := range wantStages {
		if res.StageTimes[s] <= 0 {
			t.Errorf("StageTimes[%s] = %v", s, res.StageTimes[s])
		}
	}

	// The event stream is worker-count invariant, like every other output.
	rec4, _ := run(4)
	if got, want := typeSequence(rec4.events), typeSequence(ev); got != want {
		t.Errorf("Workers=4 event sequence diverged from Workers=1:\n%s\nvs\n%s", got, want)
	}
}

// TestMetricsObserverOnCompile checks the ready-made metrics observer
// accumulates a coherent snapshot from a real compile.
func TestMetricsObserverOnCompile(t *testing.T) {
	net := autoncs.RandomSparseNetwork(140, 0.93, 11)
	m := &autoncs.MetricsObserver{}
	cfg := autoncs.DefaultConfig()
	cfg.Seed = 11
	cfg.Observer = m
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Compiles != 1 {
		t.Errorf("Compiles = %d", snap.Compiles)
	}
	if snap.ISCIterations != len(res.Trace) {
		t.Errorf("ISCIterations = %d, trace %d", snap.ISCIterations, len(res.Trace))
	}
	if snap.PlaceSteps == 0 || snap.RouteBatches == 0 {
		t.Errorf("no progress events: %+v", snap)
	}
	if snap.LastRouteStats.Wires == 0 || snap.LastRouteStats.FinalCapacity == 0 {
		t.Errorf("LastRouteStats not populated: %+v", snap.LastRouteStats)
	}
	if snap.Err != nil {
		t.Errorf("Err = %v", snap.Err)
	}
	for _, s := range autoncs.Stages() {
		if snap.StageTimes[s] != res.StageTimes[s] {
			t.Errorf("StageTimes[%s]: observer %v, result %v", s, snap.StageTimes[s], res.StageTimes[s])
		}
	}
}
