GO ?= go

.PHONY: all build vet test test-race fuzz bench bench-large golden-update clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the pools are race-clean;
# this is the gate the golden tests rely on.
test-race:
	$(GO) test -race ./...

# Short fuzz pass over the network-format parser (satellite of the
# regression harness; CI runs the seed corpus via plain `go test`).
fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./internal/graph/

# -short skips the 2000-neuron benchmarks (minutes per op); see bench-large.
bench:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' ./...

bench-large:
	$(GO) test -bench='2000' -benchtime=1x -run='^$$' -timeout=4h ./

# Regenerate the golden compile summaries after an intentional
# behaviour change. Review the diff before committing.
golden-update:
	$(GO) test -run TestCompileGolden -update ./

clean:
	$(GO) clean ./...
