GO ?= go

# bench-save / bench-compare file locations (override to keep several
# baselines around, e.g. `make bench-save BENCH_OLD=bench_main.txt`).
BENCH_OLD ?= bench_old.txt
BENCH_NEW ?= bench_new.txt
# How many samples benchstat gets per benchmark. The suite is sized for
# -benchtime=1x; raise the count for tighter confidence intervals.
BENCH_COUNT ?= 6

.PHONY: all build vet test test-race lint fuzz serve e2e e2e-fleet bench bench-save bench-compare bench-large golden-update clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism contract is only meaningful if the pools are race-clean;
# this is the gate the golden tests rely on.
test-race:
	$(GO) test -race ./...

# The same static-analysis gate CI's lint job runs (.golangci.yml pins the
# linter set). golangci-lint is optional local tooling.
lint:
	@command -v golangci-lint >/dev/null 2>&1 || { \
		echo "golangci-lint not found; install from https://golangci-lint.run or rely on the CI lint job"; exit 1; }
	golangci-lint run ./...

# Short fuzz passes over the attacker-facing surfaces: the network-format
# parser and the cache-key derivation (CI's fuzz-smoke job runs the same
# two targets; plain `go test` replays only the seed corpus).
fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s -run '^$$' ./internal/graph/
	$(GO) test -fuzz=FuzzCanonicalHash -fuzztime=30s -run '^$$' .

# Run the compile daemon locally (ephemeral port, verbose logging).
serve:
	$(GO) run ./cmd/autoncsd -addr 127.0.0.1:0 -v

# The daemon end-to-end suite against a freshly built binary — cache hits
# bit-identical, 429 beyond capacity, SIGTERM drain.
e2e:
	$(GO) build -o /tmp/autoncsd ./cmd/autoncsd
	AUTONCSD_BIN=/tmp/autoncsd $(GO) test -v -timeout 15m -run TestDaemon ./cmd/autoncsd/

# The three-daemon fleet suite — peer cache hits across daemons, ring
# failover when the owner is killed (CI's fleet-e2e job runs the same).
e2e-fleet:
	$(GO) build -o /tmp/autoncsd ./cmd/autoncsd
	AUTONCSD_BIN=/tmp/autoncsd $(GO) test -v -timeout 15m -run TestFleet ./cmd/autoncsd/

# -short skips the 2000-neuron benchmarks (minutes per op); see bench-large.
bench:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' ./...

# Old-vs-new comparison workflow:
#   git stash (or checkout the old revision) && make bench-save
#   ...apply the change...                   && make bench-compare
# bench-save records the baseline; bench-compare records the current tree
# and feeds both to benchstat. benchstat is optional tooling — when it is
# not on PATH the raw files are kept and the install hint is printed.
bench-save:
	$(GO) test -short -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=1x -run='^$$' ./... | tee $(BENCH_OLD)

bench-compare:
	@test -f $(BENCH_OLD) || { echo "no baseline $(BENCH_OLD); run 'make bench-save' on the old revision first"; exit 1; }
	$(GO) test -short -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=1x -run='^$$' ./... | tee $(BENCH_NEW)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_OLD) $(BENCH_NEW); \
	else \
		echo "benchstat not found; raw results are in $(BENCH_OLD) and $(BENCH_NEW)"; \
		echo "install with: go install golang.org/x/perf/cmd/benchstat@latest"; \
	fi

bench-large:
	$(GO) test -bench='2000' -benchtime=1x -run='^$$' -timeout=4h ./

# Regenerate the golden compile summaries after an intentional
# behaviour change. Review the diff before committing.
golden-update:
	$(GO) test -run TestCompileGolden -update ./

clean:
	$(GO) clean ./...
